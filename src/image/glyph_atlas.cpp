#include "image/glyph_atlas.hpp"

#include <algorithm>
#include <stdexcept>

namespace loctk::image {

namespace {

/// Extra space claimed around every packed rect so neighbors never
/// touch (the lp_font GLYPH_BORDER idiom). The border lives inside the
/// claimed node, to the right of and below the rect.
constexpr int kGlyphBorder = 1;

/// Growing past this means a caller asked for something absurd; the
/// full 96-glyph x 4-scale set packs into a fraction of it.
constexpr int kMaxPageDim = 8192;

/// The character rasterized for the replacement-box slot. Any
/// non-printable code selects the box in `glyph_pixel`.
constexpr char kReplacementChar = '\x01';

}  // namespace

// --- RectPacker ----------------------------------------------------

RectPacker::RectPacker(int width, int height)
    : width_(std::max(0, width)), height_(std::max(0, height)),
      root_(std::make_unique<Node>(Node{0, 0, width_, height_, false,
                                        nullptr, nullptr})) {}

RectPacker::Node* RectPacker::insert_node(Node* node, int w, int h) {
  if (node == nullptr) return nullptr;
  if (node->used) {
    // Interior node: free space lives only in the children.
    Node* placed = insert_node(node->right.get(), w, h);
    return placed != nullptr ? placed : insert_node(node->down.get(), w, h);
  }
  if (w > node->w || h > node->h) return nullptr;
  // Claim this leaf's top-left corner and split the remainder: the
  // strip to the right of the rect (same height as the rect) and the
  // full-width strip below it.
  node->used = true;
  node->right = std::make_unique<Node>(
      Node{node->x + w, node->y, node->w - w, h, false, nullptr, nullptr});
  node->down = std::make_unique<Node>(
      Node{node->x, node->y + h, node->w, node->h - h, false, nullptr,
           nullptr});
  return node;
}

std::optional<PackedRect> RectPacker::insert(int w, int h) {
  if (w <= 0 || h <= 0) return std::nullopt;
  Node* node = insert_node(root_.get(), w + kGlyphBorder, h + kGlyphBorder);
  if (node == nullptr) return std::nullopt;
  return PackedRect{node->x, node->y, w, h};
}

// --- GlyphAtlas ----------------------------------------------------

std::size_t GlyphAtlas::slot_of(char ch, int scale) {
  const auto code = static_cast<unsigned char>(ch);
  const std::size_t glyph =
      (code >= 32 && code <= 126) ? static_cast<std::size_t>(code - 32) : 95;
  return static_cast<std::size_t>(scale - 1) * 96 + glyph;
}

GlyphAtlas::GlyphAtlas(const std::vector<GlyphKey>& keys) {
  // Deduplicate into slots; remember one representative character per
  // slot for rasterization.
  std::array<char, 96 * kAtlasMaxScale> slot_char{};
  std::vector<std::size_t> slots;
  for (const GlyphKey& key : keys) {
    const int scale = std::max(1, key.scale);
    if (scale > kAtlasMaxScale) {
      throw std::invalid_argument("GlyphAtlas: scale exceeds kAtlasMaxScale");
    }
    const std::size_t slot = slot_of(key.ch, scale);
    if (!present_[slot]) {
      present_[slot] = true;
      slot_char[slot] = has_glyph(key.ch) ? key.ch : kReplacementChar;
      slots.push_back(slot);
    }
  }
  glyph_count_ = slots.size();

  // Pack tallest-first (then widest, then slot id) — the standard
  // heuristic for the node-tree packer, and a deterministic order.
  auto dims = [](std::size_t slot) {
    const int scale = static_cast<int>(slot / 96) + 1;
    return std::pair<int, int>{kGlyphWidth * scale, kGlyphHeight * scale};
  };
  std::sort(slots.begin(), slots.end(), [&](std::size_t a, std::size_t b) {
    const auto [aw, ah] = dims(a);
    const auto [bw, bh] = dims(b);
    if (ah != bh) return ah > bh;
    if (aw != bw) return aw > bw;
    return a < b;
  });

  // Grow the page (doubling the smaller dimension) until every
  // requested glyph packs. Nothing is ever dropped: either all fit or
  // construction fails loudly.
  int width = 64;
  int height = 64;
  std::vector<PackedRect> placed(slots.size());
  for (;;) {
    RectPacker packer(width, height);
    bool all_placed = true;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      const auto [w, h] = dims(slots[i]);
      const std::optional<PackedRect> rect = packer.insert(w, h);
      if (!rect) {
        all_placed = false;
        break;
      }
      placed[i] = *rect;
    }
    if (all_placed) break;
    if (width <= height) {
      width *= 2;
    } else {
      height *= 2;
    }
    if (width > kMaxPageDim || height > kMaxPageDim) {
      throw std::runtime_error("GlyphAtlas: glyph set cannot be packed");
    }
  }
  width_ = width;
  height_ = height;

  // Rasterize each glyph into its rect from the same glyph_pixel
  // table the legacy draw_char consults — the source of the atlas
  // path's pixel-for-pixel equivalence.
  page_.assign(static_cast<std::size_t>(width_) *
                   static_cast<std::size_t>(height_),
               0);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const std::size_t slot = slots[i];
    const int scale = static_cast<int>(slot / 96) + 1;
    const PackedRect& rect = placed[i];
    entries_[slot] = AtlasGlyph{static_cast<std::uint16_t>(rect.x),
                                static_cast<std::uint16_t>(rect.y),
                                static_cast<std::uint8_t>(rect.w),
                                static_cast<std::uint8_t>(rect.h)};
    const char ch = slot_char[slot];
    for (int row = 0; row < kGlyphHeight; ++row) {
      for (int col = 0; col < kGlyphWidth; ++col) {
        if (!glyph_pixel(ch, col, row)) continue;
        for (int dy = 0; dy < scale; ++dy) {
          const std::size_t base =
              static_cast<std::size_t>(rect.y + row * scale + dy) *
                  static_cast<std::size_t>(width_) +
              static_cast<std::size_t>(rect.x + col * scale);
          for (int dx = 0; dx < scale; ++dx) {
            page_[base + static_cast<std::size_t>(dx)] = 1;
          }
        }
      }
    }
  }
}

const GlyphAtlas& GlyphAtlas::shared() {
  static const GlyphAtlas atlas = [] {
    std::vector<GlyphKey> keys;
    keys.reserve(96 * kAtlasMaxScale);
    for (int scale = 1; scale <= kAtlasMaxScale; ++scale) {
      for (int code = 32; code <= 126; ++code) {
        keys.push_back({static_cast<char>(code), scale});
      }
      keys.push_back({kReplacementChar, scale});
    }
    return GlyphAtlas(keys);
  }();
  return atlas;
}

const AtlasGlyph* GlyphAtlas::find(char ch, int scale) const {
  if (scale < 1 || scale > kAtlasMaxScale) return nullptr;
  const std::size_t slot = slot_of(ch, scale);
  return present_[slot] ? &entries_[slot] : nullptr;
}

void GlyphAtlas::blit_glyph(Raster& img, int x, int y, char ch, Color c,
                            int scale) const {
  scale = std::max(1, scale);
  const AtlasGlyph* glyph = find(ch, scale);
  if (glyph == nullptr) {
    // Not packed here (oversize scale or a subset atlas): the legacy
    // per-pixel path keeps the output correct, just slower.
    draw_char(img, x, y, ch, c, scale);
    return;
  }
  const int x0 = std::max(x, 0);
  const int y0 = std::max(y, 0);
  const int x1 = std::min(x + glyph->w, img.width());
  const int y1 = std::min(y + glyph->h, img.height());
  if (x0 >= x1 || y0 >= y1) return;
  Color* data = img.data().data();
  for (int yy = y0; yy < y1; ++yy) {
    const std::uint8_t* mask =
        row(glyph->y + (yy - y)) + glyph->x + (x0 - x);
    Color* dst = data + static_cast<std::size_t>(yy) *
                            static_cast<std::size_t>(img.width()) +
                 static_cast<std::size_t>(x0);
    const int span = x1 - x0;
    for (int i = 0; i < span; ++i) {
      if (mask[i] != 0) dst[i] = c;
    }
  }
}

int draw_text_atlas(Raster& img, int x, int y, std::string_view text,
                    Color c, int scale) {
  scale = std::max(1, scale);
  const GlyphAtlas& atlas = GlyphAtlas::shared();
  int cx = x;
  int cy = y;
  int max_width = 0;
  for (const char ch : text) {
    if (ch == '\n') {
      max_width = std::max(max_width, cx - x);
      cx = x;
      cy += kLineAdvance * scale;
      continue;
    }
    atlas.blit_glyph(img, cx, cy, ch, c, scale);
    cx += kGlyphAdvance * scale;
  }
  return std::max(max_width, cx - x);
}

}  // namespace loctk::image

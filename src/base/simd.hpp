// Portable 4-lane double SIMD wrapper for the v2 scoring kernels.
//
// Design contract (docs/ALGORITHMS.md "Scoring engine v2"):
//
//  * Every backend models the SAME logical register: 4 doubles. On
//    AVX2 that is one __m256d; on NEON it is a pair of float64x2_t;
//    the scalar fallback is a plain double[4]. Kernels are written
//    once against this interface and instantiated per backend.
//  * Lane semantics are identical across backends — lane i of every
//    operation depends only on lane i of the inputs, and hsum() uses
//    one fixed reduction tree, (l0 + l2) + (l1 + l3), everywhere.
//    Together with the build never enabling FP contraction on these
//    TUs (no -mfma; see top-level CMakeLists.txt) this makes the
//    native backends bit-identical to ScalarVec4d, which the
//    core_scoring_v2 tests pin.
//  * ScalarVec4d is ALWAYS compiled, even when a native backend is
//    selected, so the differential tests can compare both in one
//    binary and -DLOCTK_SIMD=OFF builds exercise exactly the code
//    CI's simd-off matrix leg ships.
//
// Alignment: CompiledDatabase pads each SoA row to a multiple of
// kLanes * 2 doubles (= 64 bytes, one cache line) and aligns the
// allocation to 64 bytes, so kernels may use aligned full-width loads
// with no scalar tail and no masking. Pad cells carry mask = 0 and
// finite sentinel values, which makes every padded term an exact
// +/-0.0 contribution.

#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#if defined(LOCTK_SIMD_AVX2)
#include <immintrin.h>
#elif defined(LOCTK_SIMD_NEON)
#include <arm_neon.h>
#endif

namespace loctk::simd {

/// Logical lanes per vector, identical for every backend.
inline constexpr std::size_t kLanes = 4;

/// Allocation alignment and row-stride granularity for SoA matrices:
/// one cache line, i.e. two logical vectors of doubles.
inline constexpr std::size_t kAlignment = 64;
inline constexpr std::size_t kStrideDoubles = kAlignment / sizeof(double);

/// Rounds a logical row width up to the padded stride (multiple of 8
/// doubles) used by CompiledDatabase matrices.
constexpr std::size_t padded_stride(std::size_t n) {
  return (n + kStrideDoubles - 1) & ~(kStrideDoubles - 1);
}

// ---------------------------------------------------------------------------
// Scalar fallback: always compiled, pinned bit-compatible with the
// native backends by tests/core_scoring_v2_test.cpp.
// ---------------------------------------------------------------------------

struct ScalarVec4d {
  double lane[kLanes];

  static ScalarVec4d load(const double* p) {
    return {{p[0], p[1], p[2], p[3]}};
  }
  static ScalarVec4d broadcast(double v) { return {{v, v, v, v}}; }
  static ScalarVec4d zero() { return {{0.0, 0.0, 0.0, 0.0}}; }

  void store(double* p) const {
    p[0] = lane[0];
    p[1] = lane[1];
    p[2] = lane[2];
    p[3] = lane[3];
  }

  ScalarVec4d operator+(const ScalarVec4d& o) const {
    return {{lane[0] + o.lane[0], lane[1] + o.lane[1], lane[2] + o.lane[2],
             lane[3] + o.lane[3]}};
  }
  ScalarVec4d operator-(const ScalarVec4d& o) const {
    return {{lane[0] - o.lane[0], lane[1] - o.lane[1], lane[2] - o.lane[2],
             lane[3] - o.lane[3]}};
  }
  ScalarVec4d operator*(const ScalarVec4d& o) const {
    return {{lane[0] * o.lane[0], lane[1] * o.lane[1], lane[2] * o.lane[2],
             lane[3] * o.lane[3]}};
  }

  /// Lane-wise a > b ? x : y. NaN compares false (→ y), matching the
  /// ordered-quiet comparisons the native backends use.
  static ScalarVec4d select_gt(const ScalarVec4d& a, const ScalarVec4d& b,
                               const ScalarVec4d& x, const ScalarVec4d& y) {
    return {{a.lane[0] > b.lane[0] ? x.lane[0] : y.lane[0],
             a.lane[1] > b.lane[1] ? x.lane[1] : y.lane[1],
             a.lane[2] > b.lane[2] ? x.lane[2] : y.lane[2],
             a.lane[3] > b.lane[3] ? x.lane[3] : y.lane[3]}};
  }
  /// Lane-wise a >= b ? x : y (NaN → y).
  static ScalarVec4d select_ge(const ScalarVec4d& a, const ScalarVec4d& b,
                               const ScalarVec4d& x, const ScalarVec4d& y) {
    return {{a.lane[0] >= b.lane[0] ? x.lane[0] : y.lane[0],
             a.lane[1] >= b.lane[1] ? x.lane[1] : y.lane[1],
             a.lane[2] >= b.lane[2] ? x.lane[2] : y.lane[2],
             a.lane[3] >= b.lane[3] ? x.lane[3] : y.lane[3]}};
  }

  /// Fixed reduction tree shared by every backend: (l0+l2) + (l1+l3).
  double hsum() const {
    return (lane[0] + lane[2]) + (lane[1] + lane[3]);
  }
};

#if defined(LOCTK_SIMD_AVX2)

// ---------------------------------------------------------------------------
// AVX2 backend: one __m256d per logical vector. hsum reproduces the
// scalar tree exactly — extract/unpack pairs lanes as {0,2} and {1,3}.
// ---------------------------------------------------------------------------

struct Avx2Vec4d {
  __m256d v;

  static Avx2Vec4d load(const double* p) { return {_mm256_load_pd(p)}; }
  static Avx2Vec4d broadcast(double x) { return {_mm256_set1_pd(x)}; }
  static Avx2Vec4d zero() { return {_mm256_setzero_pd()}; }

  void store(double* p) const { _mm256_store_pd(p, v); }

  Avx2Vec4d operator+(const Avx2Vec4d& o) const {
    return {_mm256_add_pd(v, o.v)};
  }
  Avx2Vec4d operator-(const Avx2Vec4d& o) const {
    return {_mm256_sub_pd(v, o.v)};
  }
  Avx2Vec4d operator*(const Avx2Vec4d& o) const {
    return {_mm256_mul_pd(v, o.v)};
  }

  static Avx2Vec4d select_gt(const Avx2Vec4d& a, const Avx2Vec4d& b,
                             const Avx2Vec4d& x, const Avx2Vec4d& y) {
    return {_mm256_blendv_pd(y.v, x.v,
                             _mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ))};
  }
  static Avx2Vec4d select_ge(const Avx2Vec4d& a, const Avx2Vec4d& b,
                             const Avx2Vec4d& x, const Avx2Vec4d& y) {
    return {_mm256_blendv_pd(y.v, x.v,
                             _mm256_cmp_pd(a.v, b.v, _CMP_GE_OQ))};
  }

  double hsum() const {
    const __m128d lo = _mm256_castpd256_pd128(v);       // {l0, l1}
    const __m128d hi = _mm256_extractf128_pd(v, 1);     // {l2, l3}
    const __m128d sum = _mm_add_pd(lo, hi);             // {l0+l2, l1+l3}
    const __m128d swap = _mm_unpackhi_pd(sum, sum);     // {l1+l3, l1+l3}
    return _mm_cvtsd_f64(_mm_add_sd(sum, swap));        // (l0+l2)+(l1+l3)
  }
};

using Vec4d = Avx2Vec4d;
inline constexpr const char* kBackendName = "avx2";

#elif defined(LOCTK_SIMD_NEON)

// ---------------------------------------------------------------------------
// NEON backend: a pair of float64x2_t. Lane order matches the scalar
// layout ({l0,l1} in lo, {l2,l3} in hi) so hsum's tree is identical.
// ---------------------------------------------------------------------------

struct NeonVec4d {
  float64x2_t lo;  // lanes 0, 1
  float64x2_t hi;  // lanes 2, 3

  static NeonVec4d load(const double* p) {
    return {vld1q_f64(p), vld1q_f64(p + 2)};
  }
  static NeonVec4d broadcast(double x) {
    return {vdupq_n_f64(x), vdupq_n_f64(x)};
  }
  static NeonVec4d zero() { return broadcast(0.0); }

  void store(double* p) const {
    vst1q_f64(p, lo);
    vst1q_f64(p + 2, hi);
  }

  NeonVec4d operator+(const NeonVec4d& o) const {
    return {vaddq_f64(lo, o.lo), vaddq_f64(hi, o.hi)};
  }
  NeonVec4d operator-(const NeonVec4d& o) const {
    return {vsubq_f64(lo, o.lo), vsubq_f64(hi, o.hi)};
  }
  NeonVec4d operator*(const NeonVec4d& o) const {
    return {vmulq_f64(lo, o.lo), vmulq_f64(hi, o.hi)};
  }

  static NeonVec4d select_gt(const NeonVec4d& a, const NeonVec4d& b,
                             const NeonVec4d& x, const NeonVec4d& y) {
    return {vbslq_f64(vcgtq_f64(a.lo, b.lo), x.lo, y.lo),
            vbslq_f64(vcgtq_f64(a.hi, b.hi), x.hi, y.hi)};
  }
  static NeonVec4d select_ge(const NeonVec4d& a, const NeonVec4d& b,
                             const NeonVec4d& x, const NeonVec4d& y) {
    return {vbslq_f64(vcgeq_f64(a.lo, b.lo), x.lo, y.lo),
            vbslq_f64(vcgeq_f64(a.hi, b.hi), x.hi, y.hi)};
  }

  double hsum() const {
    const float64x2_t sum = vaddq_f64(lo, hi);  // {l0+l2, l1+l3}
    return vgetq_lane_f64(sum, 0) + vgetq_lane_f64(sum, 1);
  }
};

using Vec4d = NeonVec4d;
inline constexpr const char* kBackendName = "neon";

#else

using Vec4d = ScalarVec4d;
inline constexpr const char* kBackendName = "scalar";

#endif

/// Name of the backend the library's kernels were compiled against.
inline const char* backend() { return kBackendName; }

// ---------------------------------------------------------------------------
// 64-byte aligned storage for the SoA matrices and compiled queries.
// ---------------------------------------------------------------------------

template <class T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kAlignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kAlignment});
  }

  template <class U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
};

/// A 64-byte aligned double buffer; the element type of every
/// CompiledDatabase matrix and CompiledObservation vector.
using AlignedDoubles = std::vector<double, AlignedAllocator<double>>;

/// True when `p` satisfies the kernel alignment contract.
inline bool is_aligned(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % kAlignment == 0;
}

}  // namespace loctk::simd

#include "base/fault_injector.hpp"

#include <algorithm>

#include "base/metrics.hpp"

namespace loctk {

namespace {

// Injected-fault counts by kind, process-wide. FaultInjectorStats stays
// the per-arm() source of truth for tests; these feed the shared
// metrics snapshot so chaos runs show up next to pipeline counters.
metrics::Counter& io_veto_counter() {
  static metrics::Counter& c = metrics::counter("fault.injected.io_veto");
  return c;
}
metrics::Counter& truncate_counter() {
  static metrics::Counter& c = metrics::counter("fault.injected.truncate");
  return c;
}
metrics::Counter& bitflip_counter() {
  static metrics::Counter& c = metrics::counter("fault.injected.bitflip");
  return c;
}

}  // namespace

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(const FaultInjectorConfig& config) {
  std::lock_guard lock(mutex_);
  config_ = config;
  stats_ = {};
  // splitmix64 seeding so nearby seeds give unrelated streams.
  rng_state_ = config.seed + 0x9e3779b97f4a7c15ull;
  armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::disarm() {
  std::lock_guard lock(mutex_);
  armed_.store(false, std::memory_order_relaxed);
}

std::uint64_t FaultInjector::next_u64() {
  // splitmix64: tiny, full-period, and independent of loctk_stats so
  // the base layer stays dependency-free.
  std::uint64_t z = (rng_state_ += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {

// Uniform [0, 1) from the top 53 bits.
double to_unit(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

bool FaultInjector::should_fail_io() {
  if (!armed()) return false;
  std::lock_guard lock(mutex_);
  ++stats_.calls;
  if (config_.io_failure_probability <= 0.0) return false;
  if (to_unit(next_u64()) >= config_.io_failure_probability) return false;
  ++stats_.vetoed_opens;
  io_veto_counter().increment();
  return true;
}

bool FaultInjector::corrupt(std::string& bytes) {
  if (!armed() || bytes.empty()) return false;
  std::lock_guard lock(mutex_);
  bool mutated = false;
  if (config_.truncate_probability > 0.0 &&
      to_unit(next_u64()) < config_.truncate_probability) {
    bytes.resize(static_cast<std::size_t>(next_u64() % bytes.size()));
    ++stats_.truncations;
    truncate_counter().increment();
    mutated = true;
  }
  if (!bytes.empty() && config_.bitflip_probability > 0.0 &&
      to_unit(next_u64()) < config_.bitflip_probability) {
    const int flips =
        1 + static_cast<int>(next_u64() %
                             static_cast<std::uint64_t>(
                                 std::max(1, config_.max_bitflips)));
    for (int i = 0; i < flips; ++i) {
      const std::size_t pos =
          static_cast<std::size_t>(next_u64() % bytes.size());
      bytes[pos] = static_cast<char>(
          static_cast<unsigned char>(bytes[pos]) ^
          static_cast<unsigned char>(1u << (next_u64() % 8)));
      ++stats_.bitflips;
      bitflip_counter().increment();
    }
    mutated = true;
  }
  return mutated;
}

FaultInjectorStats FaultInjector::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace loctk

#pragma once

/// \file fault_injector.hpp
/// Process-wide fault-injection hooks for robustness testing.
///
/// The ingest layer promises "corrupt input yields a structured error,
/// never a crash" — a promise that is only testable if tests can make
/// I/O fail and bytes rot on demand. `FaultInjector` is that switch:
/// a singleton the file-buffering primitives consult on every read.
/// Disarmed (the default) it costs one relaxed atomic load; armed, it
/// rolls a deterministic per-call RNG against the configured
/// probabilities and either vetoes the open (simulated I/O failure) or
/// mutates the just-read bytes (truncation, bit flips) before the
/// parser ever sees them. Tests arm it through the RAII
/// `ScopedFaultInjection` so a throwing assertion can never leave the
/// process poisoned for the next test.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace loctk {

/// Knobs. All probabilities are in [0, 1] and evaluated independently
/// per call with a seeded (deterministic) generator.
struct FaultInjectorConfig {
  /// Chance that an open/read is vetoed with a simulated I/O failure.
  double io_failure_probability = 0.0;
  /// Chance that a successfully read buffer is truncated to a random
  /// prefix.
  double truncate_probability = 0.0;
  /// Chance that a successfully read buffer gets `max_bitflips`-capped
  /// random single-bit corruptions.
  double bitflip_probability = 0.0;
  int max_bitflips = 8;
  std::uint64_t seed = 0x5eed;
};

/// What the injector has done so far (for test assertions).
struct FaultInjectorStats {
  std::uint64_t calls = 0;
  std::uint64_t vetoed_opens = 0;
  std::uint64_t truncations = 0;
  std::uint64_t bitflips = 0;
};

class FaultInjector {
 public:
  static FaultInjector& instance();

  /// Arms injection with `config` (resets the RNG and stats).
  void arm(const FaultInjectorConfig& config);
  void disarm();

  /// Lock-free; the hot-path guard in FileBuffer/read_file_bytes.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// True when this open/read should fail. Always false when disarmed.
  bool should_fail_io();

  /// Applies truncation / bit-flip corruption to `bytes` in place per
  /// the armed config; returns true when anything was mutated. No-op
  /// when disarmed.
  bool corrupt(std::string& bytes);

  FaultInjectorStats stats() const;

 private:
  FaultInjector() = default;
  std::uint64_t next_u64();  // callers hold mutex_

  mutable std::mutex mutex_;
  std::atomic<bool> armed_{false};
  FaultInjectorConfig config_;
  FaultInjectorStats stats_;
  std::uint64_t rng_state_ = 0;
};

/// RAII arm/disarm for tests.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const FaultInjectorConfig& config) {
    FaultInjector::instance().arm(config);
  }
  ~ScopedFaultInjection() { FaultInjector::instance().disarm(); }

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

}  // namespace loctk

#pragma once

/// \file metrics.hpp
/// The toolkit-wide observability layer.
///
/// RADAR-style deployments report per-stage timing and error CDFs as
/// first-class outputs; after the compiled kernels, parallel ingest,
/// and fault quarantine the toolkit could *do* the work fast but could
/// not *say* what it did — how many scans were rejected, where ingest
/// time went, what p99 locate latency looks like. `MetricsRegistry`
/// answers those questions from the running system:
///
///  * `Counter`    — monotonic lock-free event count (files parsed,
///                   degraded fixes, injected faults);
///  * `Gauge`      — last-written instantaneous value (queue depth,
///                   Kalman innovation magnitude);
///  * `HistogramMetric` — a distribution with sharded atomic bins
///                   (latencies, sizes); bin geometry and snapshot
///                   materialization reuse `stats::Histogram`;
///  * `ScopedTimer` / `TraceSpan` — RAII monotonic-clock timing into a
///                   histogram (plus a call counter for spans).
///
/// Instrumented code pays one relaxed atomic RMW per event on the hot
/// path; name lookup happens once per call site through a
/// function-local `static Counter& c = metrics::counter("...")`.
/// `MetricsRegistry::global()` is immortal (never destroyed) so worker
/// threads draining during process exit can still record safely.
///
/// Snapshots (`registry.snapshot()`) are plain data: deterministic
/// (names sorted), exportable as aligned text (`to_text`) or JSON
/// (`write_json` / `to_json`). `examples/locate_tool --stats`,
/// `examples/site_survey --stats`, and both perf benches emit them;
/// docs/OBSERVABILITY.md specifies the naming scheme and formats.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "stats/histogram.hpp"

namespace loctk::metrics {

/// Monotonic event counter. All operations are lock-free relaxed
/// atomics; cross-counter ordering is not guaranteed (snapshots are
/// statistically, not transactionally, consistent).
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void increment() { add(1); }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Bin layout of a `HistogramMetric`. The default is the latency
/// layout: log10(seconds) from 100 ns to 100 s, six bins per decade,
/// which keeps one layout serving everything from a sub-microsecond
/// kernel to a multi-second ingest without tuning per call site.
struct HistogramOptions {
  /// Domain bounds. With `log_scale`, these are log10 of the recorded
  /// value (the default [-7, 2] spans 1e-7 s .. 1e2 s).
  double lo = -7.0;
  double hi = 2.0;
  std::size_t bins = 54;
  /// Record log10(value) instead of the value itself (values <= 0
  /// clamp to the underflow bin). Quantile estimates are reported back
  /// in natural units either way.
  bool log_scale = true;
  /// Unit label for exports ("s", "ft", "bytes").
  std::string unit = "s";
};

/// Summary of one histogram at snapshot time.
struct HistogramSnapshot {
  std::string name;
  HistogramOptions options;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when empty.
  double max = 0.0;
  /// Merged bins in the (possibly log10) domain, under/overflow
  /// included — a plain `stats::Histogram` so downstream code can
  /// reuse mass()/mode_bin()/probability().
  stats::Histogram bins{0.0, 1.0, 1};

  double mean() const {
    return count ? sum / static_cast<double>(count) : 0.0;
  }
  /// Quantile estimate in natural units, interpolated within the
  /// containing bin. Returns 0 when empty.
  double quantile(double q) const;
};

/// A concurrent histogram: `kShards` independent arrays of atomic bin
/// counters (threads hash to a shard, so concurrent recorders do not
/// contend on the same cache lines), merged at snapshot time into a
/// `stats::Histogram`. Bin geometry is delegated to an embedded
/// `stats::Histogram` so edge math exists in exactly one place.
class HistogramMetric {
 public:
  explicit HistogramMetric(HistogramOptions options = {});

  /// Records one value (natural units; log10 applied internally when
  /// configured). Lock-free.
  void record(double value) { record_n(value, 1); }

  /// Records `n` occurrences of `value` — the batch form used when a
  /// caller times N homogeneous operations with one clock pair.
  void record_n(double value, std::uint64_t n);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  HistogramSnapshot snapshot(std::string name) const;
  void reset();

  const HistogramOptions& options() const { return options_; }

  static constexpr std::size_t kShards = 8;

 private:
  struct Shard {
    /// bins + 2 slots: [0] underflow, [1..bins] bins, [bins+1] overflow.
    std::unique_ptr<std::atomic<std::uint64_t>[]> slots;
  };

  HistogramOptions options_;
  stats::Histogram edges_;  ///< counts unused; bin geometry only.
  Shard shards_[kShards];
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// One full registry snapshot: plain sorted data, safe to copy around
/// and compare.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Aligned human-readable table (one metric per line).
  std::string to_text() const;
  /// JSON object {"counters": {...}, "gauges": {...},
  /// "histograms": {...}}; stable key order, non-zero bins only.
  void write_json(std::ostream& os) const;
  std::string to_json() const;
};

/// Named metric registry. Lookup/registration takes a mutex; the
/// returned references are stable for the registry's lifetime, so call
/// sites resolve once and then touch only atomics.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every built-in instrumentation point
  /// reports to. Intentionally leaked: safe to use from any thread at
  /// any point of process shutdown.
  static MetricsRegistry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `options` apply only on first registration of `name`.
  HistogramMetric& histogram(std::string_view name,
                             const HistogramOptions& options = {});

  MetricsSnapshot snapshot() const;

  /// Zeroes every metric's value; registered objects (and outstanding
  /// references to them) stay valid. For tests and tools.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>, std::less<>>
      histograms_;
};

/// Global-registry shorthands for instrumentation sites:
///   static metrics::Counter& c = metrics::counter("ingest.files");
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
HistogramMetric& histogram(std::string_view name,
                           const HistogramOptions& options = {});

/// RAII monotonic-clock timer: records elapsed seconds into `hist` on
/// destruction (once per `weight` homogeneous operations — a batch of
/// 64 locates records 64 samples of elapsed/64 each).
class ScopedTimer {
 public:
  explicit ScopedTimer(HistogramMetric& hist, std::uint64_t weight = 1)
      : hist_(&hist), weight_(weight),
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    if (hist_ && weight_ > 0) {
      const double per_op =
          elapsed_s() / static_cast<double>(weight_);
      hist_->record_n(per_op, weight_);
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  double elapsed_s() const {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  /// Re-weights the pending record (e.g. once the batch size is known).
  void set_weight(std::uint64_t weight) { weight_ = weight; }
  /// Drops the pending record.
  void cancel() { hist_ = nullptr; }

 private:
  HistogramMetric* hist_;
  std::uint64_t weight_;
  std::chrono::steady_clock::time_point start_;
};

/// Named RAII span against the global registry: duration lands in the
/// `trace.<name>.seconds` histogram and `trace.<name>.calls` counts
/// entries. For pipeline stages ("ingest", "evaluate") rather than
/// per-event hot paths — the name lookup happens per construction.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name);
  ~TraceSpan() = default;  // timer_ records on destruction

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  double elapsed_s() const { return timer_.elapsed_s(); }

 private:
  ScopedTimer timer_;
};

}  // namespace loctk::metrics

#include "base/error.hpp"

namespace loctk {

std::string_view error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kIo:
      return "io";
    case ErrorCode::kParse:
      return "parse";
    case ErrorCode::kCorrupt:
      return "corrupt";
    case ErrorCode::kDegenerate:
      return "degenerate";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Error::to_string() const {
  std::string out = "[";
  out += error_code_name(code_);
  out += "] ";
  out += message_;
  if (!context_.empty()) {
    out += " (";
    for (std::size_t i = 0; i < context_.size(); ++i) {
      if (i > 0) out += "; ";
      out += "while ";
      out += context_[i];
    }
    out += ")";
  }
  return out;
}

}  // namespace loctk

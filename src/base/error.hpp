#pragma once

/// \file error.hpp
/// The toolkit-wide structured error taxonomy.
///
/// The substrate libraries each grew a typed exception (FormatError,
/// CodecError, ArchiveError, ...) which is right for in-module control
/// flow but leaves callers that compose modules — the training
/// pipeline, the live location service — pattern-matching on five
/// unrelated hierarchies. `loctk::Error` is the common currency those
/// entry points speak instead: a small closed code enum (what *kind*
/// of failure), a human message (what exactly), and a context chain
/// (where in the pipeline it surfaced). `Result<T>` carries either a
/// value or an Error without unwinding, so batch drivers can quarantine
/// one bad input and keep going. The throwing per-module APIs remain;
/// the `try_*` entry points adapt them into this taxonomy.

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace loctk {

/// Closed failure taxonomy. Codes classify *recovery strategy*, not
/// module: retry/propagate (kIo), reject the input (kParse/kCorrupt),
/// degrade the answer (kDegenerate), file a bug (kInternal).
enum class ErrorCode {
  /// The environment failed us: open/stat/read/map/write errors.
  kIo,
  /// Text input violated a format grammar (wi-scan, location map).
  kParse,
  /// Binary input failed structural validation (codec, archive).
  kCorrupt,
  /// The computation has no meaningful answer for this input (empty
  /// observation, all-unknown BSSIDs, < 3 usable ranging circles).
  kDegenerate,
  /// A supposedly-impossible state; indicates a toolkit bug.
  kInternal,
};

/// Short stable name ("io", "parse", ...), for logs and tests.
std::string_view error_code_name(ErrorCode code);

/// One structured failure: code + message + outward context chain.
class Error {
 public:
  Error(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Context frames, innermost first (the order they were attached
  /// while the error propagated outward).
  const std::vector<std::string>& context() const { return context_; }

  /// Attaches one context frame ("decoding 'site.ltdb'"). Chainable
  /// in both value and reference positions.
  Error& with_context(std::string frame) & {
    context_.push_back(std::move(frame));
    return *this;
  }
  Error&& with_context(std::string frame) && {
    context_.push_back(std::move(frame));
    return std::move(*this);
  }

  /// "[corrupt] codec: bad magic (while decoding 'a.ltdb'; while
  /// loading site)".
  std::string to_string() const;

 private:
  ErrorCode code_;
  std::string message_;
  std::vector<std::string> context_;
};

/// Value-or-Error sum type (std::expected is C++23; the toolkit is
/// C++20). Construction is implicit from either alternative so
/// `return Error{...}` and `return value` both read naturally.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::in_place_index<0>, std::move(value)) {}
  Result(Error error) : v_(std::in_place_index<1>, std::move(error)) {}

  bool ok() const { return v_.index() == 0; }
  explicit operator bool() const { return ok(); }

  /// Precondition: ok().
  T& value() & { return std::get<0>(v_); }
  const T& value() const& { return std::get<0>(v_); }
  T&& value() && { return std::get<0>(std::move(v_)); }

  /// Precondition: !ok().
  Error& error() & { return std::get<1>(v_); }
  const Error& error() const& { return std::get<1>(v_); }
  Error&& error() && { return std::get<1>(std::move(v_)); }

  T value_or(T fallback) const& { return ok() ? value() : fallback; }

  /// Attaches context to the error alternative; no-op on success.
  /// Keeps pipeline code linear: `return try_x().with_context("...")`.
  Result&& with_context(std::string frame) && {
    if (!ok()) std::get<1>(v_).with_context(std::move(frame));
    return std::move(*this);
  }

 private:
  std::variant<T, Error> v_;
};

/// Error-or-nothing form for side-effecting entry points.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(Error error) : err_(std::move(error)) {}

  bool ok() const { return !err_.has_value(); }
  explicit operator bool() const { return ok(); }

  /// Precondition: !ok().
  Error& error() & { return *err_; }
  const Error& error() const& { return *err_; }

  Result&& with_context(std::string frame) && {
    if (err_) err_->with_context(std::move(frame));
    return std::move(*this);
  }

 private:
  std::optional<Error> err_;
};

}  // namespace loctk

#include "base/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <ostream>
#include <sstream>
#include <thread>

namespace loctk::metrics {

namespace {

/// CAS loop for atomic min/max over doubles (fetch_min on floats is
/// not in C++20).
void atomic_min(std::atomic<double>& target, double value) {
  double cur = target.load(std::memory_order_relaxed);
  while (value < cur && !target.compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double value) {
  double cur = target.load(std::memory_order_relaxed);
  while (value > cur && !target.compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

/// Shard index for the calling thread: computed once per thread, so
/// concurrent recorders spread across bin arrays instead of bouncing
/// one cache line.
std::size_t this_thread_shard() {
  static thread_local const std::size_t shard =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      HistogramMetric::kShards;
  return shard;
}

/// Shortest round-trippable decimal for JSON/text export.
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer the shortest representation that parses back exactly.
  for (int prec = 1; prec <= 16; ++prec) {
    char probe[64];
    std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
    if (std::strtod(probe, nullptr) == v) return probe;
  }
  return buf;
}

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

/// --- HistogramMetric --------------------------------------------------

HistogramMetric::HistogramMetric(HistogramOptions options)
    : options_(std::move(options)),
      edges_(options_.lo, options_.hi, std::max<std::size_t>(1, options_.bins)) {
  const std::size_t slots = edges_.bin_count() + 2;
  for (Shard& shard : shards_) {
    shard.slots = std::make_unique<std::atomic<std::uint64_t>[]>(slots);
    for (std::size_t i = 0; i < slots; ++i) shard.slots[i] = 0;
  }
}

void HistogramMetric::record_n(double value, std::uint64_t n) {
  if (n == 0 || std::isnan(value)) return;

  double x = value;
  if (options_.log_scale) {
    // Non-positive values cannot be log-scaled; route to underflow by
    // mapping below the domain.
    x = value > 0.0 ? std::log10(value) : options_.lo - 1.0;
  }
  std::size_t slot;  // 0 underflow, 1..bins bins, bins+1 overflow
  if (x < options_.lo) {
    slot = 0;
  } else if (x >= options_.hi) {
    slot = edges_.bin_count() + 1;
  } else {
    slot = 1 + edges_.bin_index(x);
  }
  shards_[this_thread_shard()].slots[slot].fetch_add(
      n, std::memory_order_relaxed);

  const bool first =
      count_.fetch_add(n, std::memory_order_relaxed) == 0;
  sum_.fetch_add(value * static_cast<double>(n),
                 std::memory_order_relaxed);
  if (first) {
    // Seed min/max so the CAS loops compare against a real sample
    // rather than the 0.0 initializer. A racing second recorder still
    // converges: both run the min/max loops below.
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
  }
  atomic_min(min_, value);
  atomic_max(max_, value);
}

HistogramSnapshot HistogramMetric::snapshot(std::string name) const {
  HistogramSnapshot snap;
  snap.name = std::move(name);
  snap.options = options_;
  snap.bins = stats::Histogram(options_.lo, options_.hi, edges_.bin_count());

  const std::size_t bins = edges_.bin_count();
  std::uint64_t underflow = 0;
  std::uint64_t overflow = 0;
  for (const Shard& shard : shards_) {
    underflow += shard.slots[0].load(std::memory_order_relaxed);
    overflow += shard.slots[bins + 1].load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < bins; ++b) {
      const std::uint64_t c =
          shard.slots[b + 1].load(std::memory_order_relaxed);
      if (c) snap.bins.add_n(edges_.bin_center(b), c);
    }
  }
  if (underflow) snap.bins.add_n(options_.lo - 1.0, underflow);
  if (overflow) snap.bins.add_n(options_.hi + 1.0, overflow);

  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = snap.count ? min_.load(std::memory_order_relaxed) : 0.0;
  snap.max = snap.count ? max_.load(std::memory_order_relaxed) : 0.0;
  return snap;
}

void HistogramMetric::reset() {
  const std::size_t slots = edges_.bin_count() + 2;
  for (Shard& shard : shards_) {
    for (std::size_t i = 0; i < slots; ++i) {
      shard.slots[i].store(0, std::memory_order_relaxed);
    }
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

double HistogramSnapshot::quantile(double q) const {
  const std::uint64_t total = bins.total();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);

  const auto to_natural = [&](double x) {
    return options.log_scale ? std::pow(10.0, x) : x;
  };

  double cumulative = static_cast<double>(bins.underflow());
  if (cumulative >= target && bins.underflow() > 0) {
    return to_natural(options.lo);
  }
  for (std::size_t b = 0; b < bins.bin_count(); ++b) {
    const double c = static_cast<double>(bins.count(b));
    if (c > 0.0 && cumulative + c >= target) {
      // Linear interpolation within the containing bin.
      const double frac =
          std::clamp((target - cumulative) / c, 0.0, 1.0);
      return to_natural(bins.bin_lo(b) +
                        frac * (bins.bin_hi(b) - bins.bin_lo(b)));
    }
    cumulative += c;
  }
  return to_natural(options.hi);
}

/// --- MetricsSnapshot --------------------------------------------------

std::string MetricsSnapshot::to_text() const {
  std::ostringstream os;
  os << "--- metrics snapshot ---\n";
  for (const auto& [name, value] : counters) {
    os << "counter    " << name << " = " << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    os << "gauge      " << name << " = " << format_double(value) << "\n";
  }
  for (const HistogramSnapshot& h : histograms) {
    os << "histogram  " << h.name << " count=" << h.count;
    if (h.count) {
      os << " mean=" << format_double(h.mean())
         << " min=" << format_double(h.min)
         << " max=" << format_double(h.max)
         << " p50=" << format_double(h.quantile(0.5))
         << " p90=" << format_double(h.quantile(0.9))
         << " p99=" << format_double(h.quantile(0.99));
      if (!h.options.unit.empty()) os << " unit=" << h.options.unit;
    }
    os << "\n";
  }
  if (empty()) os << "(no metrics recorded)\n";
  return os.str();
}

void MetricsSnapshot::write_json(std::ostream& os) const {
  os << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    os << (i ? ",\n    " : "\n    ");
    write_json_string(os, counters[i].first);
    os << ": " << counters[i].second;
  }
  os << (counters.empty() ? "},\n" : "\n  },\n");

  os << "  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    os << (i ? ",\n    " : "\n    ");
    write_json_string(os, gauges[i].first);
    os << ": " << format_double(gauges[i].second);
  }
  os << (gauges.empty() ? "},\n" : "\n  },\n");

  os << "  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i];
    os << (i ? ",\n    " : "\n    ");
    write_json_string(os, h.name);
    os << ": {\"unit\": ";
    write_json_string(os, h.options.unit);
    os << ", \"scale\": \"" << (h.options.log_scale ? "log10" : "linear")
       << "\", \"count\": " << h.count
       << ", \"sum\": " << format_double(h.sum)
       << ", \"min\": " << format_double(h.min)
       << ", \"max\": " << format_double(h.max)
       << ", \"mean\": " << format_double(h.mean())
       << ", \"p50\": " << format_double(h.quantile(0.5))
       << ", \"p90\": " << format_double(h.quantile(0.9))
       << ", \"p99\": " << format_double(h.quantile(0.99))
       << ", \"bins\": [";
    bool first_bin = true;
    if (h.bins.underflow()) {
      os << "{\"lo\": null, \"hi\": " << format_double(h.bins.lo())
         << ", \"count\": " << h.bins.underflow() << "}";
      first_bin = false;
    }
    for (std::size_t b = 0; b < h.bins.bin_count(); ++b) {
      if (!h.bins.count(b)) continue;
      if (!first_bin) os << ", ";
      first_bin = false;
      os << "{\"lo\": " << format_double(h.bins.bin_lo(b))
         << ", \"hi\": " << format_double(h.bins.bin_hi(b))
         << ", \"count\": " << h.bins.count(b) << "}";
    }
    if (h.bins.overflow()) {
      if (!first_bin) os << ", ";
      os << "{\"lo\": " << format_double(h.bins.hi())
         << ", \"hi\": null, \"count\": " << h.bins.overflow() << "}";
    }
    os << "]}";
  }
  os << (histograms.empty() ? "}\n" : "\n  }\n");
  os << "}\n";
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

/// --- MetricsRegistry --------------------------------------------------

MetricsRegistry& MetricsRegistry::global() {
  // Leaked on purpose: instrumentation in thread-pool workers and
  // static destructors must never observe a destroyed registry.
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return *it->second;
}

HistogramMetric& MetricsRegistry::histogram(std::string_view name,
                                            const HistogramOptions& options) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<HistogramMetric>(options))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.push_back(h->snapshot(name));
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

Counter& counter(std::string_view name) {
  return MetricsRegistry::global().counter(name);
}

Gauge& gauge(std::string_view name) {
  return MetricsRegistry::global().gauge(name);
}

HistogramMetric& histogram(std::string_view name,
                           const HistogramOptions& options) {
  return MetricsRegistry::global().histogram(name, options);
}

TraceSpan::TraceSpan(std::string_view name)
    : timer_(histogram("trace." + std::string(name) + ".seconds")) {
  counter("trace." + std::string(name) + ".calls").increment();
}

}  // namespace loctk::metrics

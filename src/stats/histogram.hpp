#pragma once

/// \file histogram.hpp
/// Fixed-bin histograms and empirical quantiles.
///
/// The paper's future-work item 2 proposes using the *distribution* of
/// the RSSI samples rather than only their mean; the histogram locator
/// in `loctk/core` builds on this type. The evaluation harness also
/// uses `quantile()` for error CDFs (median / 90th-percentile error).

#include <cstdint>
#include <vector>

namespace loctk::stats {

/// A histogram over [lo, hi) with `bins` equal-width bins plus
/// underflow/overflow counters. Doubles NaN are ignored.
class Histogram {
 public:
  /// Precondition: bins >= 1 and lo < hi.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_n(double x, std::uint64_t n);

  std::size_t bin_count() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }

  /// Inclusive lower edge of a bin.
  double bin_lo(std::size_t bin) const;
  /// Exclusive upper edge of a bin.
  double bin_hi(std::size_t bin) const;
  /// Center of a bin.
  double bin_center(std::size_t bin) const;

  /// Index of the bin containing x, ignoring under/overflow;
  /// x must be within [lo, hi).
  std::size_t bin_index(double x) const;

  /// Probability mass of a bin: count / total (0 when empty). Under-
  /// and overflow mass is included in the denominator.
  double mass(std::size_t bin) const;

  /// Smoothed probability of observing `x` with Laplace pseudo-count
  /// `alpha` per bin — never returns 0, which keeps product-of-
  /// probability locators from vetoing on unseen values.
  double probability(double x, double alpha = 1.0) const;

  /// Bin index with the highest count (first on ties); 0 when empty.
  std::size_t mode_bin() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Empirical quantile of a sample set with linear interpolation
/// (the "R-7" rule used by NumPy's default). `q` in [0, 1].
/// Precondition: `values` non-empty.
double quantile(std::vector<double> values, double q);

/// Median shorthand.
double median(std::vector<double> values);

}  // namespace loctk::stats

#pragma once

/// \file histogram.hpp
/// Fixed-bin histograms and empirical quantiles.
///
/// The paper's future-work item 2 proposes using the *distribution* of
/// the RSSI samples rather than only their mean; the histogram locator
/// in `loctk/core` builds on this type. The evaluation harness also
/// uses `quantile()` for error CDFs (median / 90th-percentile error).

#include <cstdint>
#include <vector>

namespace loctk::stats {

/// A histogram over [lo, hi) with `bins` equal-width bins plus
/// underflow/overflow counters. Doubles NaN are ignored.
class Histogram {
 public:
  /// Throws std::invalid_argument unless bins >= 1 and lo < hi (a hard
  /// error in every build mode: a zero-bin histogram would make every
  /// later index computation undefined, release included).
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_n(double x, std::uint64_t n);

  std::size_t bin_count() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }

  /// Inclusive lower edge of a bin.
  double bin_lo(std::size_t bin) const;
  /// Exclusive upper edge of a bin.
  double bin_hi(std::size_t bin) const;
  /// Center of a bin.
  double bin_center(std::size_t bin) const;

  /// Index of the bin containing x. Out-of-range x clamps to the
  /// nearest bin (under-range -> 0, over-range -> bins-1; NaN -> 0):
  /// the public count/density lookups reach this with arbitrary x, so
  /// the mapping must stay defined when release builds strip asserts
  /// (a negative-double-to-size_t cast is UB, not just a wrong bin).
  std::size_t bin_index(double x) const;

  /// Probability mass of a bin: count / total (0 when empty). Under-
  /// and overflow mass is included in the denominator.
  double mass(std::size_t bin) const;

  /// Smoothed probability of observing `x` with Laplace pseudo-count
  /// `alpha` per bin — never returns 0, which keeps product-of-
  /// probability locators from vetoing on unseen values.
  double probability(double x, double alpha = 1.0) const;

  /// Bin index with the highest count (first on ties); 0 when empty.
  std::size_t mode_bin() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Empirical quantile of a sample set with linear interpolation
/// (the "R-7" rule used by NumPy's default). `q` in [0, 1].
/// NaN elements are filtered out (they have no order, and feeding
/// them to std::sort violates its strict-weak-ordering contract);
/// returns NaN when no finite-ordered samples remain. Debug builds
/// still assert on an empty input to flag the caller bug early.
double quantile(std::vector<double> values, double q);

/// Median shorthand.
double median(std::vector<double> values);

}  // namespace loctk::stats

#pragma once

/// \file running_stats.hpp
/// Streaming mean / variance accumulation (Welford's algorithm).
///
/// The training phase (paper §5.1) groups the signal-strength samples
/// of each <training point, AP> pair and stores their average and
/// standard deviation; this accumulator computes both in one pass and
/// supports merging partial results from parallel workers.

#include <cstdint>
#include <limits>

namespace loctk::stats {

/// One-pass mean/variance/min/max accumulator. Numerically stable
/// (Welford); mergeable, so shards built on different threads can be
/// combined exactly (Chan et al. parallel variance).
class RunningStats {
 public:
  /// Add one sample.
  void add(double x);

  /// Merge another accumulator into this one. Exact: the result is
  /// identical (up to FP rounding) to having seen all samples here.
  void merge(const RunningStats& other);

  std::uint64_t count() const { return n_; }
  bool empty() const { return n_ == 0; }

  /// Mean of the samples seen; 0 when empty.
  double mean() const { return n_ ? mean_ : 0.0; }

  /// Population variance (divide by n); 0 when fewer than 1 sample.
  double variance() const { return n_ ? m2_ / static_cast<double>(n_) : 0.0; }

  /// Sample variance (divide by n-1); 0 when fewer than 2 samples.
  double sample_variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }

  double stddev() const;         ///< sqrt of population variance
  double sample_stddev() const;  ///< sqrt of sample variance

  /// Smallest / largest sample; +inf / -inf when empty.
  double min() const { return min_; }
  double max() const { return max_; }

  /// Sum of all samples.
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace loctk::stats

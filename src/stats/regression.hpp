#pragma once

/// \file regression.hpp
/// Least-squares model fitting for the distance <-> signal-strength
/// relationship.
///
/// The paper's geometric approach (§5.2) fits, per access point, an
/// inverse-square model  ss = a / d^2 + b  by least squares (their
/// eq. 2 / Figure 4; the coefficient's sign follows the sniffer's
/// signal-strength units — positive for dBm). Because the model is
/// linear in (a, b) once x = 1/d^2, this is ordinary linear
/// regression on transformed inputs. We also provide the log-distance
/// path-loss fit used by RADAR and a generic inverse-power fit where
/// the exponent itself is estimated.

#include <optional>
#include <span>
#include <vector>

namespace loctk::stats {

/// Result of a simple linear regression  y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;  ///< coefficient of determination in [0,1]
  std::size_t n = 0;       ///< number of points used
};

/// Ordinary least squares on (x, y) pairs. Requires >= 2 points with
/// non-zero x variance; otherwise nullopt.
std::optional<LinearFit> linear_fit(std::span<const double> x,
                                    std::span<const double> y);

/// The paper's model:  ss = a / d^2 + b.
struct InverseSquareModel {
  double a = 0.0;
  double b = 0.0;
  double r_squared = 0.0;

  /// Predicted signal strength at distance d (> 0).
  double predict(double d) const { return a / (d * d) + b; }

  /// Inverse: distance that would produce signal strength `ss`.
  /// Clamped to [d_min, d_max]; values of `ss` on the wrong side of
  /// the asymptote `b` map to d_max (signal too weak to invert).
  double invert(double ss, double d_min = 1.0, double d_max = 1e4) const;
};

/// Fit  ss = a / d^2 + b  by least squares on x = 1/d^2.
/// Distances must be > 0. Requires >= 2 distinct distances.
std::optional<InverseSquareModel> fit_inverse_square(
    std::span<const double> distance, std::span<const double> signal);

/// Log-distance path-loss model:  ss = p0 - 10 n log10(d / d0).
/// This is the standard RF propagation model (used by RADAR) and the
/// ground truth of our simulator; fitting it from survey data is the
/// calibration baseline against the paper's inverse-square choice.
struct LogDistanceModel {
  double p0 = -40.0;  ///< signal strength at the reference distance
  double n = 2.0;     ///< path-loss exponent
  double d0 = 1.0;    ///< reference distance (feet)
  double r_squared = 0.0;

  double predict(double d) const;
  /// Distance that would produce signal strength `ss`, clamped to
  /// [d_min, d_max].
  double invert(double ss, double d_min = 0.1, double d_max = 1e4) const;
};

/// Fit p0 and n (d0 fixed) by least squares on log10(d).
std::optional<LogDistanceModel> fit_log_distance(
    std::span<const double> distance, std::span<const double> signal,
    double d0 = 1.0);

/// Generic inverse-power model  ss = a / d^k + b  with the exponent k
/// estimated too (Gauss-Newton over k with the inner linear solve for
/// a, b). Used by the ablation bench on model choice.
struct InversePowerModel {
  double a = 0.0;
  double b = 0.0;
  double k = 2.0;
  double r_squared = 0.0;

  double predict(double d) const;
  double invert(double ss, double d_min = 1.0, double d_max = 1e4) const;
};

std::optional<InversePowerModel> fit_inverse_power(
    std::span<const double> distance, std::span<const double> signal,
    double k_lo = 0.5, double k_hi = 6.0, int grid = 56);

/// R^2 of arbitrary predictions vs observations.
double r_squared(std::span<const double> y, std::span<const double> y_hat);

}  // namespace loctk::stats

#include "stats/regression.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace loctk::stats {

namespace {

// Means of x and y over n points.
struct Moments {
  double mx = 0.0, my = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
  std::size_t n = 0;
};

Moments moments(std::span<const double> x, std::span<const double> y) {
  Moments m;
  m.n = std::min(x.size(), y.size());
  if (m.n == 0) return m;
  for (std::size_t i = 0; i < m.n; ++i) {
    m.mx += x[i];
    m.my += y[i];
  }
  m.mx /= static_cast<double>(m.n);
  m.my /= static_cast<double>(m.n);
  for (std::size_t i = 0; i < m.n; ++i) {
    const double dx = x[i] - m.mx;
    const double dy = y[i] - m.my;
    m.sxx += dx * dx;
    m.sxy += dx * dy;
    m.syy += dy * dy;
  }
  return m;
}

}  // namespace

std::optional<LinearFit> linear_fit(std::span<const double> x,
                                    std::span<const double> y) {
  const Moments m = moments(x, y);
  if (m.n < 2 || m.sxx <= 0.0) return std::nullopt;
  LinearFit fit;
  fit.n = m.n;
  fit.slope = m.sxy / m.sxx;
  fit.intercept = m.my - fit.slope * m.mx;
  fit.r_squared =
      m.syy > 0.0 ? (m.sxy * m.sxy) / (m.sxx * m.syy) : 1.0;
  return fit;
}

double r_squared(std::span<const double> y, std::span<const double> y_hat) {
  const std::size_t n = std::min(y.size(), y_hat.size());
  if (n == 0) return 0.0;
  double my = 0.0;
  for (std::size_t i = 0; i < n; ++i) my += y[i];
  my /= static_cast<double>(n);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ss_res += (y[i] - y_hat[i]) * (y[i] - y_hat[i]);
    ss_tot += (y[i] - my) * (y[i] - my);
  }
  if (ss_tot <= 0.0) return ss_res <= 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double InverseSquareModel::invert(double ss, double d_min,
                                  double d_max) const {
  // ss = a/d^2 + b  =>  d = sqrt(a / (ss - b)).
  const double denom = ss - b;
  // For dBm readings `a` is positive (signal is higher near the AP
  // and decays toward the asymptote b); inverted or percentage
  // scales flip the sign. Either way the quotient must be > 0.
  const double q = a / denom;
  if (!(denom != 0.0) || !(q > 0.0) || !std::isfinite(q)) return d_max;
  return std::clamp(std::sqrt(q), d_min, d_max);
}

std::optional<InverseSquareModel> fit_inverse_square(
    std::span<const double> distance, std::span<const double> signal) {
  const std::size_t n = std::min(distance.size(), signal.size());
  std::vector<double> x;
  std::vector<double> y;
  x.reserve(n);
  y.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (distance[i] > 0.0) {
      x.push_back(1.0 / (distance[i] * distance[i]));
      y.push_back(signal[i]);
    }
  }
  const auto lin = linear_fit(x, y);
  if (!lin) return std::nullopt;
  InverseSquareModel m;
  m.a = lin->slope;
  m.b = lin->intercept;
  m.r_squared = lin->r_squared;
  return m;
}

double LogDistanceModel::predict(double d) const {
  return p0 - 10.0 * n * std::log10(std::max(d, 1e-9) / d0);
}

double LogDistanceModel::invert(double ss, double d_min, double d_max) const {
  if (n == 0.0) return d_max;
  const double d = d0 * std::pow(10.0, (p0 - ss) / (10.0 * n));
  if (!std::isfinite(d)) return d_max;
  return std::clamp(d, d_min, d_max);
}

std::optional<LogDistanceModel> fit_log_distance(
    std::span<const double> distance, std::span<const double> signal,
    double d0) {
  const std::size_t n = std::min(distance.size(), signal.size());
  std::vector<double> x;
  std::vector<double> y;
  x.reserve(n);
  y.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (distance[i] > 0.0) {
      x.push_back(std::log10(distance[i] / d0));
      y.push_back(signal[i]);
    }
  }
  const auto lin = linear_fit(x, y);
  if (!lin) return std::nullopt;
  LogDistanceModel m;
  m.d0 = d0;
  m.n = -lin->slope / 10.0;
  m.p0 = lin->intercept;
  m.r_squared = lin->r_squared;
  return m;
}

double InversePowerModel::predict(double d) const {
  return a / std::pow(std::max(d, 1e-9), k) + b;
}

double InversePowerModel::invert(double ss, double d_min,
                                 double d_max) const {
  const double denom = ss - b;
  const double q = a / denom;
  if (!(denom != 0.0) || !(q > 0.0) || !std::isfinite(q) || k == 0.0) {
    return d_max;
  }
  return std::clamp(std::pow(q, 1.0 / k), d_min, d_max);
}

std::optional<InversePowerModel> fit_inverse_power(
    std::span<const double> distance, std::span<const double> signal,
    double k_lo, double k_hi, int grid) {
  assert(grid >= 2);
  const std::size_t n = std::min(distance.size(), signal.size());
  std::vector<double> d;
  std::vector<double> y;
  d.reserve(n);
  y.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (distance[i] > 0.0) {
      d.push_back(distance[i]);
      y.push_back(signal[i]);
    }
  }
  if (d.size() < 3) return std::nullopt;

  // Grid search over k with an inner closed-form solve for (a, b):
  // robust, derivative-free, and fast enough at calibration time.
  std::optional<InversePowerModel> best;
  double best_rss = std::numeric_limits<double>::infinity();
  std::vector<double> x(d.size());
  for (int g = 0; g < grid; ++g) {
    const double k = k_lo + (k_hi - k_lo) * static_cast<double>(g) /
                                static_cast<double>(grid - 1);
    for (std::size_t i = 0; i < d.size(); ++i) x[i] = std::pow(d[i], -k);
    const auto lin = linear_fit(x, y);
    if (!lin) continue;
    double rss = 0.0;
    for (std::size_t i = 0; i < d.size(); ++i) {
      const double e = y[i] - (lin->slope * x[i] + lin->intercept);
      rss += e * e;
    }
    if (rss < best_rss) {
      best_rss = rss;
      InversePowerModel m;
      m.a = lin->slope;
      m.b = lin->intercept;
      m.k = k;
      m.r_squared = lin->r_squared;
      best = m;
    }
  }
  return best;
}

}  // namespace loctk::stats

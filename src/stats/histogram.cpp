#include "stats/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace loctk::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  // Hard errors, not asserts: a 0-bin or inverted-range histogram
  // poisons every subsequent index computation, and release builds
  // (the default) strip asserts.
  if (bins < 1) {
    throw std::invalid_argument("Histogram: bins must be >= 1");
  }
  if (!(lo < hi)) {
    throw std::invalid_argument("Histogram: requires lo < hi");
  }
}

void Histogram::add(double x) { add_n(x, 1); }

void Histogram::add_n(double x, std::uint64_t n) {
  if (std::isnan(x)) return;
  if (x < lo_) {
    underflow_ += n;
  } else if (x >= hi_) {
    overflow_ += n;
  } else {
    counts_[bin_index(x)] += n;
  }
  total_ += n;
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + static_cast<double>(bin) * width_;
}
double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }
double Histogram::bin_center(std::size_t bin) const {
  return bin_lo(bin) + width_ * 0.5;
}

std::size_t Histogram::bin_index(double x) const {
  // Clamp before the size_t cast: for x < lo the quotient is negative
  // and casting a negative double to size_t is UB (not merely a wrong
  // bin), which NDEBUG builds used to reach via probability()/count()
  // lookups with arbitrary x.
  if (!(x > lo_)) return 0;  // under-range and NaN both land here
  const auto idx = static_cast<std::size_t>((x - lo_) / width_);
  return std::min(idx, counts_.size() - 1);  // guard FP edge at hi
}

double Histogram::mass(std::size_t bin) const {
  return total_ ? static_cast<double>(counts_.at(bin)) /
                      static_cast<double>(total_)
                : 0.0;
}

double Histogram::probability(double x, double alpha) const {
  const double denom = static_cast<double>(total_) +
                       alpha * static_cast<double>(counts_.size());
  if (denom <= 0.0) return 0.0;
  double count = 0.0;
  if (x >= lo_ && x < hi_) {
    count = static_cast<double>(counts_[bin_index(x)]);
  }
  return (count + alpha) / denom;
}

std::size_t Histogram::mode_bin() const {
  const auto it = std::max_element(counts_.begin(), counts_.end());
  return static_cast<std::size_t>(std::distance(counts_.begin(), it));
}

double quantile(std::vector<double> values, double q) {
  assert(!values.empty());  // caller bug; kept for debug builds
  // NaN has no place in an order statistic: it breaks std::sort's
  // strict-weak-ordering contract (unspecified results), so drop such
  // elements before sorting.
  std::erase_if(values, [](double v) { return std::isnan(v); });
  if (values.empty()) {
    // Release builds reach here for empty input too; the seed's
    // values.size() - 1 underflowed to SIZE_MAX and indexed off the
    // end of an empty vector.
    return std::numeric_limits<double>::quiet_NaN();
  }
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double h = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const auto hi = static_cast<std::size_t>(std::ceil(h));
  const double frac = h - std::floor(h);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

double median(std::vector<double> values) {
  return quantile(std::move(values), 0.5);
}

}  // namespace loctk::stats

#pragma once

/// \file rng.hpp
/// Deterministic random number generation for the simulator.
///
/// Every stochastic component of the testbed substitute (shadowing,
/// fast fading, sample dropouts, survey paths) draws from an `Rng`
/// seeded explicitly, so every experiment and test in the repo is
/// bit-reproducible. The AR(1) process models the *temporal
/// correlation* of RSSI: consecutive samples at a fixed position are
/// strongly correlated, which is exactly the "unstableness" the paper
/// names as its largest barrier (§6).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>

namespace loctk::stats {

/// Thin deterministic wrapper over a 64-bit Mersenne engine.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Normal draw.
  double normal(double mean = 0.0, double sigma = 1.0) {
    return std::normal_distribution<double>(mean, sigma)(engine_);
  }

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Derive an independent child generator; `salt` distinguishes
  /// children of the same parent (e.g. one stream per AP).
  Rng fork(std::uint64_t salt) {
    // splitmix64 of (next engine draw ^ salt) gives well-separated seeds.
    std::uint64_t z = engine_() ^ (salt + 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return Rng(z ^ (z >> 31));
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// First-order autoregressive Gaussian process
///   x_{t+1} = rho x_t + sqrt(1 - rho^2) * N(0, sigma).
/// Stationary marginal is N(0, sigma); `rho` in [0, 1) controls how
/// slowly the channel drifts between consecutive scans.
class Ar1Process {
 public:
  /// Starts from a stationary draw so the first sample is unbiased.
  Ar1Process(double sigma, double rho, Rng& rng)
      : sigma_(sigma), rho_(rho), state_(rng.normal(0.0, sigma)) {}

  /// Advance one step and return the new value.
  double next(Rng& rng) {
    const double innovation =
        rng.normal(0.0, sigma_ * std::sqrt(std::max(0.0, 1.0 - rho_ * rho_)));
    state_ = rho_ * state_ + innovation;
    return state_;
  }

  double value() const { return state_; }
  double sigma() const { return sigma_; }
  double rho() const { return rho_; }

 private:
  double sigma_;
  double rho_;
  double state_;
};

}  // namespace loctk::stats

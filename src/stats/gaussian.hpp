#pragma once

/// \file gaussian.hpp
/// Univariate Gaussian density utilities.
///
/// The paper's probabilistic locator (§5.1) scores an observation `o`
/// against a trained <mean, sigma> pair with
///
///   value = exp(-(o - mean)^2 / (2 sigma^2)) / sqrt(2 pi sigma^2)
///
/// and multiplies the per-AP values. We expose both that exact formula
/// and its log form (sums instead of products — mandatory once the AP
/// count or sample count grows, or the product underflows).

#include <cmath>

namespace loctk::stats {

inline constexpr double kTwoPi = 6.283185307179586476925286766559;

/// A fitted univariate Gaussian. `sigma` must be > 0 for the density
/// functions; use `regularized()` to impose a floor on degenerate fits
/// (all training samples identical gives sigma == 0).
struct Gaussian {
  double mean = 0.0;
  double sigma = 1.0;

  friend constexpr bool operator==(const Gaussian&, const Gaussian&) = default;

  /// Density at x — exactly the paper's formula (1).
  double pdf(double x) const {
    const double z = (x - mean) / sigma;
    return std::exp(-0.5 * z * z) / std::sqrt(kTwoPi * sigma * sigma);
  }

  /// log pdf(x); numerically safe for tiny densities.
  double log_pdf(double x) const {
    const double z = (x - mean) / sigma;
    return -0.5 * z * z - 0.5 * std::log(kTwoPi * sigma * sigma);
  }

  /// Cumulative distribution function.
  double cdf(double x) const {
    return 0.5 * std::erfc(-(x - mean) / (sigma * std::sqrt(2.0)));
  }

  /// Standardized residual (z-score) of x.
  double z_score(double x) const { return (x - mean) / sigma; }

  /// Same mean with sigma clamped from below by `floor`. Training
  /// points whose samples never varied would otherwise produce a
  /// delta-function likelihood that vetoes every observation.
  Gaussian regularized(double floor) const {
    return {mean, sigma < floor ? floor : sigma};
  }
};

/// Standard normal pdf.
double normal_pdf(double z);

/// Standard normal cdf.
double normal_cdf(double z);

/// Inverse standard normal cdf (Acklam's rational approximation,
/// |error| < 1.2e-8 over (0, 1)). Out-of-range p returns +-infinity.
double normal_quantile(double p);

}  // namespace loctk::stats

#include "wiscan/archive.hpp"

#include <array>
#include <cstdint>
#include <fstream>
#include <sstream>

namespace loctk::wiscan {

namespace {

constexpr char kMagic[4] = {'L', 'A', 'R', '1'};
// Caps protect against allocating on garbage length fields.
constexpr std::uint64_t kMaxEntries = 1 << 20;
constexpr std::uint64_t kMaxNameLen = 4096;
constexpr std::uint64_t kMaxDataLen = 1ull << 32;

void put_u64(std::ostream& os, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) os.put(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint64_t get_u64(std::istream& is) {
  std::array<unsigned char, 8> b{};
  is.read(reinterpret_cast<char*>(b.data()), 8);
  if (is.gcount() != 8) throw ArchiveError("archive: truncated integer");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[static_cast<std::size_t>(i)]) << (8 * i);
  return v;
}

}  // namespace

void Archive::validate_path(const std::string& path) {
  if (path.empty()) throw ArchiveError("archive: empty entry path");
  if (path.front() == '/') throw ArchiveError("archive: absolute entry path");
  // Reject "." and ".." components.
  std::istringstream ss(path);
  std::string part;
  while (std::getline(ss, part, '/')) {
    if (part.empty() || part == "." || part == "..") {
      throw ArchiveError("archive: unsafe entry path: " + path);
    }
  }
}

void Archive::add(const std::string& path, std::string bytes) {
  validate_path(path);
  entries_[path] = std::move(bytes);
}

bool Archive::contains(const std::string& path) const {
  return entries_.count(path) > 0;
}

const std::string& Archive::bytes(const std::string& path) const {
  const auto it = entries_.find(path);
  if (it == entries_.end()) {
    throw ArchiveError("archive: no such entry: " + path);
  }
  return it->second;
}

void Archive::write(std::ostream& os) const {
  os.write(kMagic, 4);
  put_u64(os, entries_.size());
  for (const auto& [name, data] : entries_) {
    put_u64(os, name.size());
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    put_u64(os, data.size());
    os.write(data.data(), static_cast<std::streamsize>(data.size()));
  }
}

void Archive::write(const std::filesystem::path& file) const {
  std::ofstream os(file, std::ios::binary);
  if (!os.good()) {
    throw ArchiveError("archive: cannot open " + file.string());
  }
  write(os);
  if (!os.good()) {
    throw ArchiveError("archive: write failed for " + file.string());
  }
}

Archive Archive::read(std::istream& is) {
  std::array<char, 4> magic{};
  is.read(magic.data(), 4);
  if (is.gcount() != 4 || !std::equal(magic.begin(), magic.end(), kMagic)) {
    throw ArchiveError("archive: bad magic");
  }
  const std::uint64_t count = get_u64(is);
  if (count > kMaxEntries) throw ArchiveError("archive: too many entries");

  Archive ar;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t name_len = get_u64(is);
    if (name_len == 0 || name_len > kMaxNameLen) {
      throw ArchiveError("archive: bad name length");
    }
    std::string name(name_len, '\0');
    is.read(name.data(), static_cast<std::streamsize>(name_len));
    if (static_cast<std::uint64_t>(is.gcount()) != name_len) {
      throw ArchiveError("archive: truncated name");
    }
    const std::uint64_t data_len = get_u64(is);
    if (data_len > kMaxDataLen) throw ArchiveError("archive: bad data length");
    std::string data(data_len, '\0');
    is.read(data.data(), static_cast<std::streamsize>(data_len));
    if (static_cast<std::uint64_t>(is.gcount()) != data_len) {
      throw ArchiveError("archive: truncated data");
    }
    ar.add(name, std::move(data));
  }
  return ar;
}

Archive Archive::read(const std::filesystem::path& file) {
  std::ifstream is(file, std::ios::binary);
  if (!is.good()) {
    throw ArchiveError("archive: cannot open " + file.string());
  }
  return read(is);
}

Archive Archive::pack_directory(const std::filesystem::path& dir) {
  Archive ar;
  if (!std::filesystem::is_directory(dir)) {
    throw ArchiveError("archive: not a directory: " + dir.string());
  }
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream is(entry.path(), std::ios::binary);
    if (!is.good()) {
      throw ArchiveError("archive: cannot read " + entry.path().string());
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    ar.add(entry.path().lexically_relative(dir).generic_string(),
           buf.str());
  }
  return ar;
}

void Archive::unpack_to(const std::filesystem::path& dir) const {
  for (const auto& [name, data] : entries_) {
    const std::filesystem::path out = dir / name;
    std::filesystem::create_directories(out.parent_path());
    std::ofstream os(out, std::ios::binary);
    if (!os.good()) {
      throw ArchiveError("archive: cannot write " + out.string());
    }
    os.write(data.data(), static_cast<std::streamsize>(data.size()));
  }
}

}  // namespace loctk::wiscan

#include "wiscan/archive.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>

#include "wiscan/scan_buffer.hpp"

namespace loctk::wiscan {

namespace {

constexpr char kMagic[4] = {'L', 'A', 'R', '1'};
// Caps protect against allocating on garbage length fields.
constexpr std::uint64_t kMaxEntries = 1 << 20;
constexpr std::uint64_t kMaxNameLen = 4096;
constexpr std::uint64_t kMaxDataLen = 1ull << 32;

void put_u64(std::ostream& os, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) os.put(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint64_t get_u64(std::string_view in, std::size_t& pos) {
  if (pos + 8 > in.size()) throw ArchiveError("archive: truncated integer");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(
             in[pos + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  pos += 8;
  return v;
}

std::string_view get_bytes(std::string_view in, std::size_t& pos,
                           std::uint64_t len, const char* what) {
  if (len > in.size() - pos) throw ArchiveError(what);
  const std::string_view out = in.substr(pos, len);
  pos += len;
  return out;
}

// Drains an already-open stream (compatibility adapter; the path
// overload goes through FileBuffer).
std::string slurp(std::istream& is) {
  std::string text;
  char chunk[4096];
  while (is.read(chunk, sizeof chunk) || is.gcount() > 0) {
    text.append(chunk, static_cast<std::size_t>(is.gcount()));
  }
  return text;
}

}  // namespace

void Archive::validate_path(const std::string& path) {
  if (path.empty()) throw ArchiveError("archive: empty entry path");
  if (path.front() == '/') throw ArchiveError("archive: absolute entry path");
  // Reject empty, "." and ".." components.
  const std::string_view sv(path);
  std::size_t start = 0;
  while (start <= sv.size()) {
    const std::size_t slash = sv.find('/', start);
    const std::string_view part =
        sv.substr(start, slash == std::string_view::npos ? slash
                                                         : slash - start);
    if (part.empty() || part == "." || part == "..") {
      throw ArchiveError("archive: unsafe entry path: " + path);
    }
    if (slash == std::string_view::npos) break;
    start = slash + 1;
  }
}

void Archive::add(const std::string& path, std::string bytes) {
  validate_path(path);
  entries_[path] = std::move(bytes);
}

bool Archive::contains(const std::string& path) const {
  return entries_.count(path) > 0;
}

const std::string& Archive::bytes(const std::string& path) const {
  const auto it = entries_.find(path);
  if (it == entries_.end()) {
    throw ArchiveError("archive: no such entry: " + path);
  }
  return it->second;
}

void Archive::write(std::ostream& os) const {
  os.write(kMagic, 4);
  put_u64(os, entries_.size());
  for (const auto& [name, data] : entries_) {
    put_u64(os, name.size());
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    put_u64(os, data.size());
    os.write(data.data(), static_cast<std::streamsize>(data.size()));
  }
}

void Archive::write(const std::filesystem::path& file) const {
  std::ofstream os(file, std::ios::binary);
  if (!os.good()) {
    throw ArchiveError("archive: cannot open " + file.string());
  }
  write(os);
  if (!os.good()) {
    throw ArchiveError("archive: write failed for " + file.string());
  }
}

Archive Archive::read_bytes(std::string_view bytes) {
  std::size_t pos = 0;
  if (bytes.size() < 4 ||
      !std::equal(kMagic, kMagic + 4, bytes.begin())) {
    throw ArchiveError("archive: bad magic");
  }
  pos = 4;
  const std::uint64_t count = get_u64(bytes, pos);
  if (count > kMaxEntries) throw ArchiveError("archive: too many entries");

  Archive ar;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t name_len = get_u64(bytes, pos);
    if (name_len == 0 || name_len > kMaxNameLen) {
      throw ArchiveError("archive: bad name length");
    }
    const std::string_view name =
        get_bytes(bytes, pos, name_len, "archive: truncated name");
    const std::uint64_t data_len = get_u64(bytes, pos);
    if (data_len > kMaxDataLen) throw ArchiveError("archive: bad data length");
    const std::string_view data =
        get_bytes(bytes, pos, data_len, "archive: truncated data");
    ar.add(std::string(name), std::string(data));
  }
  return ar;
}

Archive Archive::read(std::istream& is) { return read_bytes(slurp(is)); }

Archive Archive::read(const std::filesystem::path& file) {
  try {
    const FileBuffer buffer(file);
    return read_bytes(buffer.view());
  } catch (const BufferError& e) {
    throw ArchiveError("archive: " + std::string(e.what()));
  }
}

Archive Archive::pack_directory(const std::filesystem::path& dir) {
  Archive ar;
  if (!std::filesystem::is_directory(dir)) {
    throw ArchiveError("archive: not a directory: " + dir.string());
  }
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    try {
      ar.add(entry.path().lexically_relative(dir).generic_string(),
             read_file_bytes(entry.path()));
    } catch (const BufferError& e) {
      throw ArchiveError("archive: " + std::string(e.what()));
    }
  }
  return ar;
}

void Archive::unpack_to(const std::filesystem::path& dir) const {
  for (const auto& [name, data] : entries_) {
    const std::filesystem::path out = dir / name;
    std::filesystem::create_directories(out.parent_path());
    std::ofstream os(out, std::ios::binary);
    if (!os.good()) {
      throw ArchiveError("archive: cannot write " + out.string());
    }
    os.write(data.data(), static_cast<std::streamsize>(data.size()));
  }
}

}  // namespace loctk::wiscan

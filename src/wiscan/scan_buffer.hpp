#pragma once

/// \file scan_buffer.hpp
/// Zero-copy ingest substrate: whole-file buffers and string_view
/// parsers.
///
/// The seed toolkit read every wi-scan file through `std::getline` +
/// `istringstream` token loops — one stream construction and several
/// heap allocations per row. At survey scale (the paper's 28 files)
/// that is invisible; at the ROADMAP's corpus scale it dominates
/// training-database builds. This layer loads each file into memory
/// exactly once (mmap where available, a single resize+read
/// otherwise) and parses by slicing `std::string_view`s with
/// `std::from_chars` — no streams, no per-token allocations. The
/// istream entry points in format.hpp / location_map.hpp /
/// archive.hpp remain as thin adapters over these parsers, so the
/// text and binary formats are unchanged byte for byte.

#include <cstddef>
#include <filesystem>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "base/error.hpp"
#include "wiscan/location_map.hpp"
#include "wiscan/record.hpp"

namespace loctk::wiscan {

/// I/O failure while buffering a file (open/stat/read/map). Callers
/// that promise their own error taxonomy (FormatError, ArchiveError,
/// CodecError) catch this and rethrow.
class BufferError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Reads a whole file into one string with a single allocation:
/// seek to end, `resize`, one `read`. Replaces the
/// `ostringstream << rdbuf()` double-copy idiom. Throws BufferError.
std::string read_file_bytes(const std::filesystem::path& path);

/// Read-only view of a whole file. On POSIX the file is mmap'd
/// (read-only, private) so parsing large corpora touches pages on
/// demand and never copies the bytes; elsewhere it falls back to
/// `read_file_bytes`. The view is valid for the buffer's lifetime.
class FileBuffer {
 public:
  /// Throws BufferError when the file cannot be opened/mapped.
  explicit FileBuffer(const std::filesystem::path& path);
  ~FileBuffer();

  FileBuffer(const FileBuffer&) = delete;
  FileBuffer& operator=(const FileBuffer&) = delete;

  std::string_view view() const {
    return map_ ? std::string_view(static_cast<const char*>(map_), size_)
                : std::string_view(heap_);
  }
  std::size_t size() const { return map_ ? size_ : heap_.size(); }

 private:
  void* map_ = nullptr;  // non-null iff mmap'd
  std::size_t size_ = 0;
  std::string heap_;  // fallback storage
};

/// Parses a complete number (optional sign, decimal or scientific)
/// from `text` via `std::from_chars`; the whole token must be
/// consumed. Returns nullopt on malformed input instead of throwing
/// so parsers can attach line diagnostics.
std::optional<double> parse_number(std::string_view text);

/// Iterates the lines of a buffer without allocating: each call
/// yields the next line (terminator removed, trailing '\r' stripped),
/// or nullopt at end of input. Tracks a 1-based line number for
/// diagnostics.
class LineScanner {
 public:
  explicit LineScanner(std::string_view text) : text_(text) {}

  std::optional<std::string_view> next();
  std::size_t line_number() const { return line_no_; }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_no_ = 0;
};

/// One parsed wi-scan row. The string fields are views into the
/// scanned buffer — valid only while that buffer lives — so consumers
/// that aggregate in place never pay a per-row allocation.
struct WiScanRow {
  std::string_view bssid;
  std::string_view ssid;
  double timestamp_s = 0.0;
  double rssi_dbm = 0.0;
  int channel = 0;
};

/// Receiver for `scan_wiscan_buffer`. The virtual dispatch costs a
/// couple of ns per row; materializing a WiScanEntry costs an order
/// of magnitude more, which is exactly what push-parsing avoids.
class WiScanRowSink {
 public:
  virtual ~WiScanRowSink() = default;
  /// A non-empty `# location:` header comment (last one wins).
  virtual void on_location(std::string_view location) = 0;
  /// One data row, in file order. Rows without a time= key inherit
  /// the previous row's timestamp, matching WiScanEntry semantics.
  virtual void on_row(const WiScanRow& row) = 0;
};

/// Push-parses a wi-scan buffer into `sink`: same grammar, rules, and
/// diagnostics as `parse_wiscan_buffer`, but rows are delivered as
/// buffer views instead of being materialized, so callers such as the
/// training-database generator can aggregate without building a
/// WiScanFile first. Throws FormatError on malformed rows.
void scan_wiscan_buffer(std::string_view text, WiScanRowSink& sink);

/// Buffer-oriented wi-scan parser: same grammar, rules, and
/// diagnostics as `read_wiscan`, driven by string_view slicing.
/// Throws FormatError (declared in format.hpp) with line numbers on
/// malformed rows.
WiScanFile parse_wiscan_buffer(std::string_view text,
                               std::string_view fallback_location = {});

/// Buffer-oriented location-map parser. Unlike the seed's
/// `istringstream >> double` loop it rejects trailing garbage after
/// the two coordinates with a line diagnostic. Throws
/// LocationMapError.
LocationMap parse_location_map_buffer(std::string_view text);

/// --- structured-error adapters ---------------------------------------
/// Taxonomy-speaking forms of the ingest entry points: I/O failures
/// come back as `loctk::Error` kIo and malformed text as kParse, so
/// batch loaders can quarantine one bad file and keep parsing.

Result<std::string> try_read_file_bytes(const std::filesystem::path& path);
Result<WiScanFile> try_parse_wiscan_buffer(
    std::string_view text, std::string_view fallback_location = {});
Result<LocationMap> try_parse_location_map_buffer(std::string_view text);

}  // namespace loctk::wiscan

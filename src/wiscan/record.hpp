#pragma once

/// \file record.hpp
/// In-memory representation of wi-scan data.
///
/// A *wi-scan file* (paper §4.3) is the raw capture of one survey
/// stop: every row is one AP heard in one scan pass, tagged with the
/// pass timestamp. A collection of such files — one per named
/// location — plus a location map is the input to the Training
/// Database Generator.

#include <string>
#include <vector>

#include "radio/scanner.hpp"

namespace loctk::wiscan {

/// One row of a wi-scan file: one AP heard during one scan pass.
struct WiScanEntry {
  double timestamp_s = 0.0;
  std::string bssid;
  std::string ssid;
  int channel = 0;
  /// Received signal strength, dBm (negative; stronger is closer to 0).
  double rssi_dbm = 0.0;

  friend bool operator==(const WiScanEntry&, const WiScanEntry&) = default;
};

/// A parsed wi-scan file: the location label it was captured at plus
/// all rows in capture order.
struct WiScanFile {
  /// Survey location name, e.g. "room-d22" (paper §4.1 item 5).
  std::string location;
  std::vector<WiScanEntry> entries;

  /// Number of distinct scan passes (distinct timestamps, in order).
  std::size_t scan_count() const;

  /// Distinct BSSIDs heard, in first-heard order.
  std::vector<std::string> bssids() const;

  friend bool operator==(const WiScanFile&, const WiScanFile&) = default;
};

/// Flattens simulator scan records into wi-scan entries. `ssid_prefix`
/// labels the network name column ("loctk" -> ssid "loctk").
std::vector<WiScanEntry> entries_from_scans(
    const std::vector<radio::ScanRecord>& scans,
    const std::string& ssid = "loctk");

}  // namespace loctk::wiscan

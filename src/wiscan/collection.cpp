#include "wiscan/collection.hpp"

#include <algorithm>
#include <optional>

#include "base/metrics.hpp"
#include "concurrency/parallel_for.hpp"
#include "wiscan/scan_buffer.hpp"

namespace loctk::wiscan {

namespace {

metrics::Counter& files_loaded_counter() {
  static metrics::Counter& c = metrics::counter("ingest.files_loaded");
  return c;
}
metrics::Counter& files_quarantined_counter() {
  static metrics::Counter& c =
      metrics::counter("ingest.files_quarantined");
  return c;
}
metrics::Counter& bytes_read_counter() {
  static metrics::Counter& c = metrics::counter("ingest.bytes_read");
  return c;
}
metrics::HistogramMetric& load_seconds_histogram() {
  static metrics::HistogramMetric& h =
      metrics::histogram("ingest.load_collection.seconds");
  return h;
}
metrics::Gauge& bytes_per_s_gauge() {
  static metrics::Gauge& g = metrics::gauge("ingest.bytes_per_s");
  return g;
}

// Shared epilogue for both load paths: attributes this call's file and
// byte totals, and derives throughput from the caller's wall time (the
// duration histogram itself is fed by the caller's ScopedTimer).
void record_load(std::size_t attempted, std::size_t kept,
                 std::uint64_t bytes, double elapsed_s) {
  files_loaded_counter().add(kept);
  files_quarantined_counter().add(attempted - kept);
  bytes_read_counter().add(bytes);
  if (elapsed_s > 0.0) {
    bytes_per_s_gauge().set(static_cast<double>(bytes) / elapsed_s);
  }
}

}  // namespace

const WiScanFile* Collection::find(const std::string& location) const {
  const auto it = std::find_if(
      files.begin(), files.end(),
      [&](const WiScanFile& f) { return f.location == location; });
  return it == files.end() ? nullptr : &*it;
}

std::size_t Collection::total_entries() const {
  std::size_t n = 0;
  for (const WiScanFile& f : files) n += f.entries.size();
  return n;
}

namespace {

// Work-list order is fixed before any parsing starts and ties in the
// final by-location sort are broken by work-list index, so serial and
// parallel loads produce identical collections.
void sort_collection(Collection& c) {
  std::stable_sort(c.files.begin(), c.files.end(),
                   [](const WiScanFile& a, const WiScanFile& b) {
                     return a.location < b.location;
                   });
}

bool has_wiscan_extension(const std::string& name) {
  static constexpr std::string_view kExt = ".wiscan";
  return name.size() > kExt.size() &&
         name.compare(name.size() - kExt.size(), kExt.size(), kExt) == 0;
}

// Parses `count` work items into index-aligned slots, serially or
// chunked across `pool`.
template <typename ParseItem>
std::vector<WiScanFile> parse_work_list(std::size_t count,
                                        concurrency::ThreadPool* pool,
                                        const ParseItem& parse_item) {
  std::vector<WiScanFile> parsed(count);
  if (pool != nullptr && count > 1) {
    concurrency::parallel_for(*pool, 0, count,
                              [&](std::size_t i) { parsed[i] = parse_item(i); });
  } else {
    for (std::size_t i = 0; i < count; ++i) parsed[i] = parse_item(i);
  }
  return parsed;
}

// Quarantining variant: each slot either parses or records a
// structured error under its work-list index (so worker scheduling
// cannot reorder diagnostics); failed slots are dropped before the
// by-location sort, leaving exactly the collection a clean run over
// the surviving files would build.
template <typename TryParseItem, typename SourceName>
std::vector<WiScanFile> parse_work_list_quarantined(
    std::size_t count, concurrency::ThreadPool* pool,
    const TryParseItem& try_parse_item, const SourceName& source_name,
    LoadReport& report) {
  std::vector<std::optional<Error>> errors(count);
  std::vector<WiScanFile> parsed =
      parse_work_list(count, pool, [&](std::size_t i) {
        Result<WiScanFile> r = try_parse_item(i);
        if (r.ok()) return std::move(r).value();
        errors[i] = std::move(r).error();
        return WiScanFile{};
      });
  std::vector<WiScanFile> kept;
  kept.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (errors[i]) {
      report.quarantined.push_back(
          {source_name(i), std::move(*errors[i])});
    } else {
      kept.push_back(std::move(parsed[i]));
    }
  }
  report.files_loaded += kept.size();
  return kept;
}

}  // namespace

Collection load_collection(const Archive& archive,
                           concurrency::ThreadPool* pool,
                           LoadReport* report) {
  metrics::ScopedTimer timer(load_seconds_histogram());
  std::vector<const std::pair<const std::string, std::string>*> work;
  std::uint64_t total_bytes = 0;
  for (const auto& entry : archive.entries()) {
    if (has_wiscan_extension(entry.first)) {
      work.push_back(&entry);
      total_bytes += entry.second.size();
    }
  }
  const auto parse = [&](std::size_t i) {
    const auto& [name, bytes] = *work[i];
    return parse_wiscan_buffer(
        bytes, sanitize_location_name(std::filesystem::path(name)
                                          .stem()
                                          .string()));
  };
  Collection c;
  if (report != nullptr) {
    c.files = parse_work_list_quarantined(
        work.size(), pool,
        [&](std::size_t i) -> Result<WiScanFile> {
          try {
            return parse(i);
          } catch (const FormatError& e) {
            return Error(ErrorCode::kParse, e.what())
                .with_context("parsing archive entry '" + work[i]->first +
                              "'");
          }
        },
        [&](std::size_t i) { return work[i]->first; }, *report);
  } else {
    c.files = parse_work_list(work.size(), pool, parse);
  }
  sort_collection(c);
  record_load(work.size(), c.files.size(), total_bytes, timer.elapsed_s());
  return c;
}

Collection load_collection(const std::filesystem::path& source,
                           concurrency::ThreadPool* pool,
                           LoadReport* report) {
  if (std::filesystem::is_directory(source)) {
    metrics::ScopedTimer timer(load_seconds_histogram());
    std::vector<std::filesystem::path> work;
    std::uint64_t bytes = 0;
    for (const auto& entry :
         std::filesystem::recursive_directory_iterator(source)) {
      if (!entry.is_regular_file()) continue;
      if (!has_wiscan_extension(entry.path().filename().string())) continue;
      work.push_back(entry.path());
      std::error_code ec;
      const auto size = std::filesystem::file_size(entry.path(), ec);
      if (!ec) bytes += size;
    }
    // Directory iteration order is filesystem-dependent; sort so the
    // work list (and therefore the loaded collection) is stable.
    std::sort(work.begin(), work.end());

    const auto parse = [&](std::size_t i) {
      try {
        const FileBuffer buffer(work[i]);
        return parse_wiscan_buffer(
            buffer.view(),
            sanitize_location_name(work[i].stem().string()));
      } catch (const BufferError& e) {
        throw FormatError("load_collection: " + std::string(e.what()));
      }
    };
    Collection c;
    if (report != nullptr) {
      c.files = parse_work_list_quarantined(
          work.size(), pool,
          [&](std::size_t i) -> Result<WiScanFile> {
            try {
              const FileBuffer buffer(work[i]);
              return parse_wiscan_buffer(
                  buffer.view(),
                  sanitize_location_name(work[i].stem().string()));
            } catch (const BufferError& e) {
              return Error(ErrorCode::kIo, e.what())
                  .with_context("reading '" + work[i].string() + "'");
            } catch (const FormatError& e) {
              return Error(ErrorCode::kParse, e.what())
                  .with_context("parsing '" + work[i].string() + "'");
            }
          },
          [&](std::size_t i) { return work[i].string(); }, *report);
    } else {
      c.files = parse_work_list(work.size(), pool, parse);
    }
    sort_collection(c);
    record_load(work.size(), c.files.size(), bytes, timer.elapsed_s());
    return c;
  }
  if (std::filesystem::is_regular_file(source) &&
      source.extension() == ".lar") {
    return load_collection(Archive::read(source), pool, report);
  }
  throw FormatError("load_collection: '" + source.string() +
                    "' is neither a directory nor a .lar archive");
}

}  // namespace loctk::wiscan

#include "wiscan/collection.hpp"

#include <algorithm>

namespace loctk::wiscan {

const WiScanFile* Collection::find(const std::string& location) const {
  const auto it = std::find_if(
      files.begin(), files.end(),
      [&](const WiScanFile& f) { return f.location == location; });
  return it == files.end() ? nullptr : &*it;
}

std::size_t Collection::total_entries() const {
  std::size_t n = 0;
  for (const WiScanFile& f : files) n += f.entries.size();
  return n;
}

namespace {

void sort_collection(Collection& c) {
  std::sort(c.files.begin(), c.files.end(),
            [](const WiScanFile& a, const WiScanFile& b) {
              return a.location < b.location;
            });
}

bool has_wiscan_extension(const std::string& name) {
  static constexpr std::string_view kExt = ".wiscan";
  return name.size() > kExt.size() &&
         name.compare(name.size() - kExt.size(), kExt.size(), kExt) == 0;
}

}  // namespace

Collection load_collection(const Archive& archive) {
  Collection c;
  for (const auto& [name, bytes] : archive.entries()) {
    if (!has_wiscan_extension(name)) continue;
    const std::filesystem::path p(name);
    c.files.push_back(
        decode_wiscan(bytes, sanitize_location_name(p.stem().string())));
  }
  sort_collection(c);
  return c;
}

Collection load_collection(const std::filesystem::path& source) {
  if (std::filesystem::is_directory(source)) {
    Collection c;
    for (const auto& entry :
         std::filesystem::recursive_directory_iterator(source)) {
      if (!entry.is_regular_file()) continue;
      if (!has_wiscan_extension(entry.path().filename().string())) continue;
      c.files.push_back(read_wiscan(entry.path()));
    }
    sort_collection(c);
    return c;
  }
  if (std::filesystem::is_regular_file(source) &&
      source.extension() == ".lar") {
    return load_collection(Archive::read(source));
  }
  throw FormatError("load_collection: '" + source.string() +
                    "' is neither a directory nor a .lar archive");
}

}  // namespace loctk::wiscan

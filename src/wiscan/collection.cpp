#include "wiscan/collection.hpp"

#include <algorithm>

#include "concurrency/parallel_for.hpp"
#include "wiscan/scan_buffer.hpp"

namespace loctk::wiscan {

const WiScanFile* Collection::find(const std::string& location) const {
  const auto it = std::find_if(
      files.begin(), files.end(),
      [&](const WiScanFile& f) { return f.location == location; });
  return it == files.end() ? nullptr : &*it;
}

std::size_t Collection::total_entries() const {
  std::size_t n = 0;
  for (const WiScanFile& f : files) n += f.entries.size();
  return n;
}

namespace {

// Work-list order is fixed before any parsing starts and ties in the
// final by-location sort are broken by work-list index, so serial and
// parallel loads produce identical collections.
void sort_collection(Collection& c) {
  std::stable_sort(c.files.begin(), c.files.end(),
                   [](const WiScanFile& a, const WiScanFile& b) {
                     return a.location < b.location;
                   });
}

bool has_wiscan_extension(const std::string& name) {
  static constexpr std::string_view kExt = ".wiscan";
  return name.size() > kExt.size() &&
         name.compare(name.size() - kExt.size(), kExt.size(), kExt) == 0;
}

// Parses `count` work items into index-aligned slots, serially or
// chunked across `pool`.
template <typename ParseItem>
std::vector<WiScanFile> parse_work_list(std::size_t count,
                                        concurrency::ThreadPool* pool,
                                        const ParseItem& parse_item) {
  std::vector<WiScanFile> parsed(count);
  if (pool != nullptr && count > 1) {
    concurrency::parallel_for(*pool, 0, count,
                              [&](std::size_t i) { parsed[i] = parse_item(i); });
  } else {
    for (std::size_t i = 0; i < count; ++i) parsed[i] = parse_item(i);
  }
  return parsed;
}

}  // namespace

Collection load_collection(const Archive& archive,
                           concurrency::ThreadPool* pool) {
  std::vector<const std::pair<const std::string, std::string>*> work;
  for (const auto& entry : archive.entries()) {
    if (has_wiscan_extension(entry.first)) work.push_back(&entry);
  }
  Collection c;
  c.files = parse_work_list(work.size(), pool, [&](std::size_t i) {
    const auto& [name, bytes] = *work[i];
    return parse_wiscan_buffer(
        bytes, sanitize_location_name(std::filesystem::path(name)
                                          .stem()
                                          .string()));
  });
  sort_collection(c);
  return c;
}

Collection load_collection(const std::filesystem::path& source,
                           concurrency::ThreadPool* pool) {
  if (std::filesystem::is_directory(source)) {
    std::vector<std::filesystem::path> work;
    for (const auto& entry :
         std::filesystem::recursive_directory_iterator(source)) {
      if (!entry.is_regular_file()) continue;
      if (!has_wiscan_extension(entry.path().filename().string())) continue;
      work.push_back(entry.path());
    }
    // Directory iteration order is filesystem-dependent; sort so the
    // work list (and therefore the loaded collection) is stable.
    std::sort(work.begin(), work.end());

    Collection c;
    c.files = parse_work_list(work.size(), pool, [&](std::size_t i) {
      try {
        const FileBuffer buffer(work[i]);
        return parse_wiscan_buffer(
            buffer.view(),
            sanitize_location_name(work[i].stem().string()));
      } catch (const BufferError& e) {
        throw FormatError("load_collection: " + std::string(e.what()));
      }
    });
    sort_collection(c);
    return c;
  }
  if (std::filesystem::is_regular_file(source) &&
      source.extension() == ".lar") {
    return load_collection(Archive::read(source), pool);
  }
  throw FormatError("load_collection: '" + source.string() +
                    "' is neither a directory nor a .lar archive");
}

}  // namespace loctk::wiscan

#include "wiscan/format.hpp"

#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>

namespace loctk::wiscan {

namespace {

void require(bool ok, const std::string& what) {
  if (!ok) throw FormatError(what);
}

double parse_double(const std::string& text, const std::string& what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    require(used == text.size(), what + ": trailing junk in '" + text + "'");
    return v;
  } catch (const FormatError&) {
    throw;
  } catch (...) {
    throw FormatError(what + ": not a number: '" + text + "'");
  }
}

int parse_int(const std::string& text, const std::string& what) {
  const double v = parse_double(text, what);
  return static_cast<int>(v);
}

// Splits "key=value" at the first '='; returns false for plain words.
bool split_kv(const std::string& token, std::string& key,
              std::string& value) {
  const auto eq = token.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  key = token.substr(0, eq);
  value = token.substr(eq + 1);
  return true;
}

}  // namespace

void write_wiscan(std::ostream& os, const WiScanFile& file) {
  os << "# wi-scan v1\n";
  if (!file.location.empty()) os << "# location: " << file.location << '\n';
  os << "# rows: " << file.entries.size() << '\n';
  for (const WiScanEntry& e : file.entries) {
    os << "time=" << e.timestamp_s << " bssid=" << e.bssid;
    if (!e.ssid.empty()) os << " ssid=" << e.ssid;
    if (e.channel != 0) os << " channel=" << e.channel;
    os << " rssi=" << e.rssi_dbm << '\n';
  }
}

void write_wiscan(const std::filesystem::path& path, const WiScanFile& file) {
  std::ofstream os(path);
  require(os.good(), "write_wiscan: cannot open " + path.string());
  write_wiscan(os, file);
  require(os.good(), "write_wiscan: write failed for " + path.string());
}

WiScanFile read_wiscan(std::istream& is,
                       const std::string& fallback_location) {
  WiScanFile file;
  file.location = fallback_location;

  std::string line;
  double last_time = 0.0;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    // Strip trailing CR from files written on Windows (the paper's
    // toolkit environment).
    if (!line.empty() && line.back() == '\r') line.pop_back();

    // Comments: may carry the location header.
    const auto first_nonspace = line.find_first_not_of(" \t");
    if (first_nonspace == std::string::npos) continue;
    if (line[first_nonspace] == '#') {
      static constexpr std::string_view kLocTag = "location:";
      const auto pos = line.find(kLocTag);
      if (pos != std::string::npos) {
        std::string loc = line.substr(pos + kLocTag.size());
        const auto begin = loc.find_first_not_of(" \t");
        if (begin != std::string::npos) {
          const auto end = loc.find_last_not_of(" \t");
          file.location = loc.substr(begin, end - begin + 1);
        }
      }
      continue;
    }

    WiScanEntry entry;
    entry.timestamp_s = last_time;
    bool have_bssid = false;
    bool have_rssi = false;

    std::istringstream tokens(line);
    std::string token;
    while (tokens >> token) {
      std::string key, value;
      if (!split_kv(token, key, value)) {
        throw FormatError("read_wiscan: line " + std::to_string(line_no) +
                          ": expected key=value, got '" + token + "'");
      }
      if (key == "time") {
        entry.timestamp_s = parse_double(value, "read_wiscan: time");
      } else if (key == "bssid") {
        entry.bssid = value;
        have_bssid = true;
      } else if (key == "ssid") {
        entry.ssid = value;
      } else if (key == "channel") {
        entry.channel = parse_int(value, "read_wiscan: channel");
      } else if (key == "rssi") {
        entry.rssi_dbm = parse_double(value, "read_wiscan: rssi");
        have_rssi = true;
      }
      // Unknown keys: ignored deliberately.
    }
    require(have_bssid, "read_wiscan: line " + std::to_string(line_no) +
                            ": missing bssid");
    require(have_rssi, "read_wiscan: line " + std::to_string(line_no) +
                           ": missing rssi");
    last_time = entry.timestamp_s;
    file.entries.push_back(std::move(entry));
  }
  return file;
}

WiScanFile read_wiscan(const std::filesystem::path& path) {
  std::ifstream is(path);
  require(is.good(), "read_wiscan: cannot open " + path.string());
  return read_wiscan(is, sanitize_location_name(path.stem().string()));
}

std::string encode_wiscan(const WiScanFile& file) {
  std::ostringstream os;
  write_wiscan(os, file);
  return os.str();
}

WiScanFile decode_wiscan(const std::string& text,
                         const std::string& fallback_location) {
  std::istringstream is(text);
  return read_wiscan(is, fallback_location);
}

std::string sanitize_location_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char raw : name) {
    const auto c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      out.push_back(static_cast<char>(std::tolower(c)));
    } else if (c == ' ' || c == '/' || c == '\\' || c == '_' || c == '-') {
      if (!out.empty() && out.back() != '-') out.push_back('-');
    }
    // Other punctuation dropped.
  }
  while (!out.empty() && out.back() == '-') out.pop_back();
  return out;
}

}  // namespace loctk::wiscan

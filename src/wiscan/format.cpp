#include "wiscan/format.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "wiscan/scan_buffer.hpp"

namespace loctk::wiscan {

namespace {

void require(bool ok, const std::string& what) {
  if (!ok) throw FormatError(what);
}

// Drains an already-open stream into one string (the istream entry
// points are compatibility adapters; the path overloads go through
// FileBuffer and never touch a stream).
std::string slurp(std::istream& is) {
  std::string text;
  char chunk[4096];
  while (is.read(chunk, sizeof chunk) || is.gcount() > 0) {
    text.append(chunk, static_cast<std::size_t>(is.gcount()));
  }
  return text;
}

}  // namespace

void write_wiscan(std::ostream& os, const WiScanFile& file) {
  os << "# wi-scan v1\n";
  if (!file.location.empty()) os << "# location: " << file.location << '\n';
  os << "# rows: " << file.entries.size() << '\n';
  for (const WiScanEntry& e : file.entries) {
    os << "time=" << e.timestamp_s << " bssid=" << e.bssid;
    if (!e.ssid.empty()) os << " ssid=" << e.ssid;
    if (e.channel != 0) os << " channel=" << e.channel;
    os << " rssi=" << e.rssi_dbm << '\n';
  }
}

void write_wiscan(const std::filesystem::path& path, const WiScanFile& file) {
  std::ofstream os(path);
  require(os.good(), "write_wiscan: cannot open " + path.string());
  write_wiscan(os, file);
  require(os.good(), "write_wiscan: write failed for " + path.string());
}

WiScanFile read_wiscan(std::istream& is,
                       const std::string& fallback_location) {
  return parse_wiscan_buffer(slurp(is), fallback_location);
}

WiScanFile read_wiscan(const std::filesystem::path& path) {
  try {
    const FileBuffer buffer(path);
    return parse_wiscan_buffer(
        buffer.view(), sanitize_location_name(path.stem().string()));
  } catch (const BufferError& e) {
    throw FormatError("read_wiscan: " + std::string(e.what()));
  }
}

std::string encode_wiscan(const WiScanFile& file) {
  std::ostringstream os;
  write_wiscan(os, file);
  return os.str();
}

WiScanFile decode_wiscan(const std::string& text,
                         const std::string& fallback_location) {
  return parse_wiscan_buffer(text, fallback_location);
}

std::string sanitize_location_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char raw : name) {
    const auto c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      out.push_back(static_cast<char>(std::tolower(c)));
    } else if (c == ' ' || c == '/' || c == '\\' || c == '_' || c == '-') {
      if (!out.empty() && out.back() != '-') out.push_back('-');
    }
    // Other punctuation dropped.
  }
  while (!out.empty() && out.back() == '-') out.pop_back();
  return out;
}

}  // namespace loctk::wiscan

#include "wiscan/scan_buffer.hpp"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "base/fault_injector.hpp"
#include "wiscan/format.hpp"

#if defined(__unix__) || (defined(__APPLE__) && defined(__MACH__))
#define LOCTK_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace loctk::wiscan {

std::string read_file_bytes(const std::filesystem::path& path) {
  if (FaultInjector::instance().should_fail_io()) {
    throw BufferError("read_file_bytes: injected I/O failure on " +
                      path.string());
  }
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) {
    throw BufferError("read_file_bytes: cannot open " + path.string());
  }
  is.seekg(0, std::ios::end);
  const std::streamoff end = is.tellg();
  if (end < 0) {
    throw BufferError("read_file_bytes: cannot size " + path.string());
  }
  std::string bytes;
  bytes.resize(static_cast<std::size_t>(end));
  is.seekg(0, std::ios::beg);
  is.read(bytes.data(), end);
  if (static_cast<std::streamoff>(is.gcount()) != end) {
    throw BufferError("read_file_bytes: short read on " + path.string());
  }
  FaultInjector::instance().corrupt(bytes);
  return bytes;
}

FileBuffer::FileBuffer(const std::filesystem::path& path) {
#if LOCTK_HAVE_MMAP
  // Injection needs mutable bytes (truncation, bit flips) and a veto
  // point; a read-only shared mapping offers neither, so an armed
  // injector routes every buffer through the heap path.
  if (FaultInjector::instance().armed()) {
    heap_ = read_file_bytes(path);
    return;
  }
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw BufferError("FileBuffer: cannot open " + path.string());
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw BufferError("FileBuffer: cannot stat " + path.string());
  }
  // Regular non-empty files are mapped; everything else (empty files,
  // pipes) goes through the heap path below.
  if (S_ISREG(st.st_mode) && st.st_size > 0) {
    void* p = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                     PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (p == MAP_FAILED) {
      throw BufferError("FileBuffer: mmap failed for " + path.string());
    }
    map_ = p;
    size_ = static_cast<std::size_t>(st.st_size);
    return;
  }
  ::close(fd);
#endif
  heap_ = read_file_bytes(path);
}

FileBuffer::~FileBuffer() {
#if LOCTK_HAVE_MMAP
  if (map_ != nullptr) ::munmap(map_, size_);
#endif
}

namespace {

// Exact powers of ten up to 10^22 — every entry is an integer below
// 2^74 whose binary expansion fits a double exactly.
constexpr double kPow10[] = {1e0,  1e1,  1e2,  1e3,  1e4,  1e5,
                             1e6,  1e7,  1e8,  1e9,  1e10, 1e11,
                             1e12, 1e13, 1e14, 1e15, 1e16, 1e17,
                             1e18, 1e19, 1e20, 1e21, 1e22};

// Fast path for plain fixed-notation decimals ([+-]digits[.digits]),
// which is every number the wi-scan and location-map formats emit.
// With <= 15 significant digits the mantissa fits 2^53 exactly and
// the scale is an exact power of ten, so one division yields the
// correctly-rounded value — bit-identical to from_chars/stod.
// Returns nullopt when the token needs the general-purpose parser
// (exponents, long mantissas, inf/nan, or malformed input).
std::optional<double> parse_fixed_decimal(std::string_view text) {
  std::size_t i = 0;
  const bool negative = !text.empty() && text.front() == '-';
  if (negative || (!text.empty() && text.front() == '+')) i = 1;

  std::uint64_t mantissa = 0;
  int digits = 0;
  int frac_digits = -1;  // >= 0 once the decimal point is seen
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (c >= '0' && c <= '9') {
      mantissa = mantissa * 10 + static_cast<std::uint64_t>(c - '0');
      ++digits;
      if (frac_digits >= 0) ++frac_digits;
    } else if (c == '.' && frac_digits < 0) {
      frac_digits = 0;
    } else {
      return std::nullopt;  // exponent or garbage: general parser
    }
  }
  if (digits == 0 || digits > 15) return std::nullopt;
  const double magnitude =
      static_cast<double>(mantissa) /
      kPow10[frac_digits < 0 ? 0 : frac_digits];
  return negative ? -magnitude : magnitude;
}

}  // namespace

std::optional<double> parse_number(std::string_view text) {
  if (const auto fast = parse_fixed_decimal(text)) return fast;
  // std::stod tolerated an explicit leading '+'; from_chars does not.
  if (text.size() > 1 && text.front() == '+' && text[1] != '+' &&
      text[1] != '-') {
    text.remove_prefix(1);
  }
  if (text.empty()) return std::nullopt;
#if defined(__cpp_lib_to_chars)
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  return v;
#else
  // Pre-<charconv>-FP toolchains: strtod on a NUL-terminated copy.
  // Tokens are short (one number), so the copy stays in SSO storage.
  const std::string copy(text);
  char* end = nullptr;
  const double v = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size()) return std::nullopt;
  return v;
#endif
}

std::optional<std::string_view> LineScanner::next() {
  if (pos_ >= text_.size()) return std::nullopt;
  ++line_no_;
  const std::size_t nl = text_.find('\n', pos_);
  std::string_view line = nl == std::string_view::npos
                              ? text_.substr(pos_)
                              : text_.substr(pos_, nl - pos_);
  pos_ = nl == std::string_view::npos ? text_.size() : nl + 1;
  // Files written on Windows (the paper's toolkit environment).
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

namespace {

std::string_view trim(std::string_view s) {
  const auto begin = s.find_first_not_of(" \t");
  if (begin == std::string_view::npos) return {};
  const auto end = s.find_last_not_of(" \t");
  return s.substr(begin, end - begin + 1);
}

// istream >> whitespace, as a branch-cheap predicate. A multi-char
// find_first_of over the set costs ~4x as much as this per byte,
// and the tokenizer visits every byte of every row.
inline bool is_token_space(char c) {
  return c == ' ' || c == '\t' || c == '\v' || c == '\f' || c == '\r';
}

// Yields whitespace-separated tokens of one line, istream >> style.
struct TokenScanner {
  std::string_view line;
  std::size_t pos = 0;

  std::optional<std::string_view> next() {
    const std::size_t size = line.size();
    std::size_t begin = pos;
    while (begin < size && is_token_space(line[begin])) ++begin;
    if (begin >= size) {
      pos = size;
      return std::nullopt;
    }
    std::size_t end = begin;
    while (end < size && !is_token_space(line[end])) ++end;
    pos = end;
    return line.substr(begin, end - begin);
  }
};

double require_number(std::string_view text, const char* what,
                      std::size_t line_no) {
  const auto v = parse_number(text);
  if (!v) {
    throw FormatError(std::string(what) + ": not a number: '" +
                      std::string(text) + "' (line " +
                      std::to_string(line_no) + ")");
  }
  return *v;
}

// Fast path for the canonical row shape the toolkit's own writer
// emits: `time=T bssid=B [ssid=S] [channel=C] rssi=R`, keys in that
// order. Matching the expected key directly skips the per-token
// dispatch chain of the generic loop. Returns false — with no fields
// committed — whenever the row deviates (reordered or unknown keys,
// extra whitespace, malformed numbers), and the generic loop re-parses
// the line from scratch so diagnostics are identical either way.
struct CanonicalRow {
  std::string_view bssid;
  std::string_view ssid;
  double timestamp_s = 0.0;
  double rssi_dbm = 0.0;
  int channel = 0;
  bool has_time = false;
};

bool parse_canonical_row(std::string_view line, CanonicalRow& row,
                         std::string_view& cached_time_token,
                         double& cached_time_value) {
  std::size_t pos = 0;
  const std::size_t size = line.size();
  // Matches `<key>=<value>` at `pos` followed by one space or the end
  // of the line; yields the value and advances past the separator.
  const auto take = [&](std::string_view key,
                        std::string_view& value) -> bool {
    if (!line.substr(pos).starts_with(key)) return false;
    const std::size_t vbegin = pos + key.size();
    std::size_t vend = vbegin;
    while (vend < size && line[vend] != ' ') {
      if (is_token_space(line[vend])) return false;  // generic loop
      ++vend;
    }
    if (vend == vbegin) return false;  // empty value: let it diagnose
    value = line.substr(vbegin, vend - vbegin);
    pos = vend < size ? vend + 1 : size;
    return true;
  };

  std::string_view value;
  if (take("time=", value)) {
    if (value == cached_time_token) {
      row.timestamp_s = cached_time_value;
    } else {
      const auto t = parse_fixed_decimal(value);
      if (!t) return false;
      row.timestamp_s = *t;
      cached_time_token = value;
      cached_time_value = *t;
    }
    row.has_time = true;
  }
  if (!take("bssid=", row.bssid)) return false;
  take("ssid=", row.ssid);  // optional
  if (take("channel=", value)) {
    const auto c = parse_fixed_decimal(value);
    if (!c) return false;
    row.channel = static_cast<int>(*c);
  }
  if (!take("rssi=", value)) return false;
  const auto r = parse_fixed_decimal(value);
  if (!r) return false;
  row.rssi_dbm = *r;
  return pos >= size;  // anything left over: generic loop
}

}  // namespace

void scan_wiscan_buffer(std::string_view text, WiScanRowSink& sink) {
  LineScanner lines(text);
  double last_time = 0.0;
  // Every row of one scan pass carries the same time= token; remember
  // the last token's bytes so repeats skip the numeric parse.
  std::string_view cached_time_token;
  double cached_time_value = 0.0;
  while (const auto maybe_line = lines.next()) {
    const std::string_view line = *maybe_line;
    const std::size_t line_no = lines.line_number();

    if (line.empty()) continue;
    // Data rows start at column zero; only indented or blank-ish lines
    // pay for the leading-whitespace scan.
    std::size_t first_nonspace = 0;
    if (line[0] == ' ' || line[0] == '\t') {
      first_nonspace = line.find_first_not_of(" \t");
      if (first_nonspace == std::string_view::npos) continue;
    }
    if (line[first_nonspace] == '#') {
      // Comments may carry the location header.
      static constexpr std::string_view kLocTag = "location:";
      const auto tag = line.find(kLocTag);
      if (tag != std::string_view::npos) {
        const std::string_view loc = trim(line.substr(tag + kLocTag.size()));
        if (!loc.empty()) sink.on_location(loc);
      }
      continue;
    }

    WiScanRow out;
    out.timestamp_s = last_time;

    CanonicalRow row;
    if (first_nonspace == 0 &&
        parse_canonical_row(line, row, cached_time_token,
                            cached_time_value)) {
      out.bssid = row.bssid;
      out.ssid = row.ssid;
      out.channel = row.channel;
      out.rssi_dbm = row.rssi_dbm;
      if (row.has_time) out.timestamp_s = row.timestamp_s;
      last_time = out.timestamp_s;
      sink.on_row(out);
      continue;
    }

    bool have_bssid = false;
    bool have_rssi = false;

    TokenScanner tokens{line};
    while (const auto maybe_token = tokens.next()) {
      const std::string_view token = *maybe_token;
      // Known keys are matched by literal prefix (one fixed-length
      // memcmp each, ordered by on-disk position) instead of locating
      // '=' and slicing first — the '=' scan only runs for the rare
      // unknown-key token.
      if (token.starts_with("time=")) {
        const std::string_view value = token.substr(5);
        if (!value.empty() && value == cached_time_token) {
          out.timestamp_s = cached_time_value;
        } else {
          out.timestamp_s =
              require_number(value, "read_wiscan: time", line_no);
          cached_time_token = value;
          cached_time_value = out.timestamp_s;
        }
      } else if (token.starts_with("bssid=")) {
        out.bssid = token.substr(6);
        have_bssid = true;
      } else if (token.starts_with("ssid=")) {
        out.ssid = token.substr(5);
      } else if (token.starts_with("channel=")) {
        out.channel = static_cast<int>(require_number(
            token.substr(8), "read_wiscan: channel", line_no));
      } else if (token.starts_with("rssi=")) {
        out.rssi_dbm =
            require_number(token.substr(5), "read_wiscan: rssi", line_no);
        // parse_number accepts "inf"/"nan" spellings (from_chars does);
        // a non-finite dBm would flow into Welford accumulation and
        // Gaussian sigma math downstream, so reject it at the row.
        if (!std::isfinite(out.rssi_dbm)) {
          throw FormatError("read_wiscan: rssi not finite: '" +
                            std::string(token.substr(5)) + "' (line " +
                            std::to_string(line_no) + ")");
        }
        have_rssi = true;
      } else {
        const auto eq = token.find('=');
        if (eq == std::string_view::npos || eq == 0) {
          throw FormatError("read_wiscan: line " + std::to_string(line_no) +
                            ": expected key=value, got '" +
                            std::string(token) + "'");
        }
        // Unknown keys: ignored deliberately (forward compatibility).
      }
    }
    if (!have_bssid) {
      throw FormatError("read_wiscan: line " + std::to_string(line_no) +
                        ": missing bssid");
    }
    if (!have_rssi) {
      throw FormatError("read_wiscan: line " + std::to_string(line_no) +
                        ": missing rssi");
    }
    last_time = out.timestamp_s;
    sink.on_row(out);
  }
}

namespace {

// Materializes rows into a WiScanFile — the adapter that keeps
// parse_wiscan_buffer (and the istream entry points built on it)
// behaving exactly as before the push-parser refactor.
struct FileSink final : WiScanRowSink {
  WiScanFile file;

  void on_location(std::string_view location) override {
    file.location = location;
  }
  void on_row(const WiScanRow& row) override {
    WiScanEntry& entry = file.entries.emplace_back();
    entry.timestamp_s = row.timestamp_s;
    entry.bssid = row.bssid;
    entry.ssid = row.ssid;
    entry.channel = row.channel;
    entry.rssi_dbm = row.rssi_dbm;
  }
};

}  // namespace

WiScanFile parse_wiscan_buffer(std::string_view text,
                               std::string_view fallback_location) {
  FileSink sink;
  sink.file.location = fallback_location;
  // Nearly every line is one entry; one up-front count avoids the
  // reallocation churn of growing a vector of string-bearing structs.
  // memchr, not std::count: the libc scanner runs at memory bandwidth.
  std::size_t line_upper_bound = 1;
  const char* cursor = text.data();
  const char* const text_end = cursor + text.size();
  while (cursor < text_end) {
    const void* nl = std::memchr(
        cursor, '\n', static_cast<std::size_t>(text_end - cursor));
    if (nl == nullptr) break;
    ++line_upper_bound;
    cursor = static_cast<const char*>(nl) + 1;
  }
  sink.file.entries.reserve(line_upper_bound);
  scan_wiscan_buffer(text, sink);
  return std::move(sink.file);
}

namespace {

// Reads a possibly-quoted location name starting at `pos`; advances
// pos past it. Mirrors the istream-era grammar exactly.
std::string read_map_name(std::string_view line, std::size_t& pos,
                          std::size_t line_no) {
  if (line[pos] != '"') {
    const auto end = line.find_first_of(" \t", pos);
    std::string name(
        line.substr(pos, end == std::string_view::npos ? end : end - pos));
    pos = end == std::string_view::npos ? line.size() : end;
    return name;
  }
  ++pos;  // opening quote
  std::string name;
  while (pos < line.size()) {
    const char c = line[pos++];
    if (c == '\\' && pos < line.size()) {
      name.push_back(line[pos++]);
    } else if (c == '"') {
      return name;
    } else {
      name.push_back(c);
    }
  }
  throw LocationMapError("location-map: line " + std::to_string(line_no) +
                         ": unterminated quoted name");
}

}  // namespace

LocationMap parse_location_map_buffer(std::string_view text) {
  LocationMap map;
  LineScanner lines(text);
  while (const auto maybe_line = lines.next()) {
    const std::string_view line = *maybe_line;
    const std::size_t line_no = lines.line_number();
    const auto start = line.find_first_not_of(" \t");
    if (start == std::string_view::npos || line[start] == '#') continue;

    std::size_t pos = start;
    const std::string name = read_map_name(line, pos, line_no);
    if (name.empty()) {
      throw LocationMapError("location-map: line " + std::to_string(line_no) +
                             ": empty name");
    }
    TokenScanner coords{line, pos};
    double xy[2] = {0.0, 0.0};
    for (double& v : xy) {
      const auto token = coords.next();
      const auto value = token ? parse_number(*token) : std::nullopt;
      if (!value) {
        throw LocationMapError("location-map: line " +
                               std::to_string(line_no) +
                               ": expected two coordinates after name");
      }
      v = *value;
    }
    if (const auto extra = coords.next()) {
      throw LocationMapError("location-map: line " + std::to_string(line_no) +
                             ": trailing garbage after coordinates: '" +
                             std::string(*extra) + "'");
    }
    map.set(name, {xy[0], xy[1]});
  }
  return map;
}

Result<std::string> try_read_file_bytes(const std::filesystem::path& path) {
  try {
    return read_file_bytes(path);
  } catch (const BufferError& e) {
    return Error(ErrorCode::kIo, e.what());
  }
}

Result<WiScanFile> try_parse_wiscan_buffer(std::string_view text,
                                           std::string_view fallback_location) {
  try {
    return parse_wiscan_buffer(text, fallback_location);
  } catch (const FormatError& e) {
    return Error(ErrorCode::kParse, e.what());
  } catch (const std::exception& e) {
    return Error(ErrorCode::kInternal, e.what());
  }
}

Result<LocationMap> try_parse_location_map_buffer(std::string_view text) {
  try {
    return parse_location_map_buffer(text);
  } catch (const LocationMapError& e) {
    return Error(ErrorCode::kParse, e.what());
  } catch (const std::exception& e) {
    return Error(ErrorCode::kInternal, e.what());
  }
}

}  // namespace loctk::wiscan

#include "wiscan/survey.hpp"

#include "wiscan/format.hpp"

namespace loctk::wiscan {

WiScanFile SurveyCampaign::survey_location(const NamedLocation& loc) {
  if (config_.reset_session_per_location) scanner_->reset_session();
  WiScanFile file;
  file.location = loc.name;

  if (config_.headings.empty()) {
    file.entries = entries_from_scans(
        scanner_->collect(loc.position, config_.scans_per_location),
        config_.ssid);
    return file;
  }

  // Rotate through the configured headings, splitting the dwell as
  // evenly as possible (earlier headings absorb the remainder).
  const auto n_headings = config_.headings.size();
  const int base = config_.scans_per_location / static_cast<int>(n_headings);
  int remainder =
      config_.scans_per_location % static_cast<int>(n_headings);
  for (const double heading : config_.headings) {
    scanner_->set_heading(heading);
    const int chunk = base + (remainder > 0 ? 1 : 0);
    if (remainder > 0) --remainder;
    const auto chunk_entries = entries_from_scans(
        scanner_->collect(loc.position, chunk), config_.ssid);
    file.entries.insert(file.entries.end(), chunk_entries.begin(),
                        chunk_entries.end());
  }
  return file;
}

Collection SurveyCampaign::run(const LocationMap& map) {
  Collection c;
  c.files.reserve(map.size());
  for (const NamedLocation& loc : map.locations()) {
    c.files.push_back(survey_location(loc));
  }
  return c;
}

Collection SurveyCampaign::run_to_directory(
    const LocationMap& map, const std::filesystem::path& dir) {
  std::filesystem::create_directories(dir);
  Collection c = run(map);
  for (const WiScanFile& f : c.files) {
    write_wiscan(dir / (sanitize_location_name(f.location) + ".wiscan"), f);
  }
  return c;
}

Archive SurveyCampaign::run_to_archive(const LocationMap& map) {
  Archive ar;
  for (const WiScanFile& f : run(map).files) {
    ar.add(sanitize_location_name(f.location) + ".wiscan",
           encode_wiscan(f));
  }
  return ar;
}

}  // namespace loctk::wiscan

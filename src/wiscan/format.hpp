#pragma once

/// \file format.hpp
/// The wi-scan text file format: writer and tolerant parser.
///
/// Format (one file per survey location):
///
///     # wi-scan v1
///     # location: kitchen
///     time=0.0 bssid=00:17:AB:00:00:00 ssid=loctk channel=1 rssi=-54
///     time=0.0 bssid=00:17:AB:00:00:01 ssid=loctk channel=6 rssi=-61
///     time=1.0 bssid=00:17:AB:00:00:00 ssid=loctk channel=1 rssi=-55
///
/// Rules the parser follows (paper §4.3 warns that the generator
/// "must correctly deal with ... file format"):
///  * blank lines and '#' comment lines are skipped;
///  * key=value tokens may appear in any order; unknown keys are
///    ignored (forward compatibility);
///  * `bssid` and `rssi` are mandatory per row; `time` defaults to the
///    previous row's time (0 initially);
///  * a `# location:` header sets the file's location label, otherwise
///    the label is derived from the file name (stem).

#include <filesystem>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "wiscan/record.hpp"

namespace loctk::wiscan {

/// Error type for malformed wi-scan input.
class FormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Serializes a wi-scan file (header + rows).
void write_wiscan(std::ostream& os, const WiScanFile& file);
void write_wiscan(const std::filesystem::path& path, const WiScanFile& file);

/// Parses a wi-scan stream. `fallback_location` is used when the
/// stream has no `# location:` header. Throws FormatError on rows
/// that cannot be parsed (missing bssid/rssi, malformed numbers).
WiScanFile read_wiscan(std::istream& is,
                       const std::string& fallback_location = "");
WiScanFile read_wiscan(const std::filesystem::path& path);

/// In-memory round trip helpers.
std::string encode_wiscan(const WiScanFile& file);
WiScanFile decode_wiscan(const std::string& text,
                         const std::string& fallback_location = "");

/// Makes a location name safe for use as a file stem: lowercase,
/// spaces and path separators replaced by '-', other punctuation
/// dropped. "Room D22" -> "room-d22".
std::string sanitize_location_name(const std::string& name);

}  // namespace loctk::wiscan

#pragma once

/// \file survey.hpp
/// The training-phase field work, simulated.
///
/// Phase 1 of the paper (§3, §5.1): visit a set of named locations,
/// stand there for ~1.5 minutes collecting scans, save one wi-scan
/// file per location. `SurveyCampaign` drives a `radio::Scanner` over
/// a `LocationMap` and produces the collection — either in memory, as
/// files in a directory, or packed into a `.lar` archive — exactly
/// the inputs the Training Database Generator expects.

#include <filesystem>
#include <vector>

#include "radio/scanner.hpp"
#include "wiscan/archive.hpp"
#include "wiscan/collection.hpp"
#include "wiscan/location_map.hpp"
#include "wiscan/record.hpp"

namespace loctk::wiscan {

/// Survey parameters.
struct SurveyConfig {
  /// Scan passes captured per location. The paper collects 1.5 min of
  /// data (§6 item 2); at ~1 scan/s that is ~90 passes.
  int scans_per_location = 90;
  /// Network name stamped into the wi-scan rows.
  std::string ssid = "loctk";
  /// Start a fresh fading session at each location (walking there
  /// takes long enough for the channel to decorrelate).
  bool reset_session_per_location = true;
  /// Surveyor headings (radians) rotated through at each location —
  /// RADAR's protocol surveyed every point facing four directions so
  /// body shadowing averages into the fingerprint. Empty leaves the
  /// scanner's current heading untouched (only matters when the
  /// channel's body_loss_db > 0).
  std::vector<double> headings;
};

/// Runs the campaign over every entry of `map`, in map order.
class SurveyCampaign {
 public:
  SurveyCampaign(radio::Scanner& scanner, SurveyConfig config = {})
      : scanner_(&scanner), config_(config) {}

  /// Collect for one location.
  WiScanFile survey_location(const NamedLocation& loc);

  /// Collect for every location in the map.
  Collection run(const LocationMap& map);

  /// Collect and write one `<sanitized-name>.wiscan` file per
  /// location into `dir` (created if needed). Returns the collection.
  Collection run_to_directory(const LocationMap& map,
                              const std::filesystem::path& dir);

  /// Collect and pack into an archive.
  Archive run_to_archive(const LocationMap& map);

  const SurveyConfig& config() const { return config_; }

 private:
  radio::Scanner* scanner_;  // non-owning
  SurveyConfig config_;
};

}  // namespace loctk::wiscan

#include "wiscan/record.hpp"

#include <algorithm>

namespace loctk::wiscan {

std::size_t WiScanFile::scan_count() const {
  std::size_t count = 0;
  double last = -1.0;
  bool first = true;
  for (const WiScanEntry& e : entries) {
    if (first || e.timestamp_s != last) {
      ++count;
      last = e.timestamp_s;
      first = false;
    }
  }
  return count;
}

std::vector<std::string> WiScanFile::bssids() const {
  std::vector<std::string> out;
  for (const WiScanEntry& e : entries) {
    if (std::find(out.begin(), out.end(), e.bssid) == out.end()) {
      out.push_back(e.bssid);
    }
  }
  return out;
}

std::vector<WiScanEntry> entries_from_scans(
    const std::vector<radio::ScanRecord>& scans, const std::string& ssid) {
  std::vector<WiScanEntry> out;
  for (const radio::ScanRecord& scan : scans) {
    for (const radio::ScanSample& s : scan.samples) {
      WiScanEntry e;
      e.timestamp_s = scan.timestamp_s;
      e.bssid = s.bssid;
      e.ssid = ssid;
      e.channel = s.channel;
      e.rssi_dbm = s.rssi_dbm;
      out.push_back(std::move(e));
    }
  }
  return out;
}

}  // namespace loctk::wiscan

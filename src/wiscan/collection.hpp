#pragma once

/// \file collection.hpp
/// Loading whole wi-scan collections.
///
/// The paper §4.3: the collection "is passed to the Training Database
/// Generator as a string representing either the name of a directory
/// containing the wi-scan files or a zip file containing the wi-scan
/// files", and the generator "must correctly deal with ... directory
/// structure and file format". We accept a directory tree (searched
/// recursively for `*.wiscan`) or a `.lar` archive, and label each
/// file by its `# location:` header or, failing that, its file stem.

#include <filesystem>
#include <string>
#include <vector>

#include "base/error.hpp"
#include "wiscan/archive.hpp"
#include "wiscan/format.hpp"
#include "wiscan/record.hpp"

namespace loctk::concurrency {
class ThreadPool;
}

namespace loctk::wiscan {

/// A loaded collection: one WiScanFile per survey location, sorted by
/// location name for deterministic downstream processing.
struct Collection {
  std::vector<WiScanFile> files;

  /// Pointer into `files` for `location`, or nullptr.
  const WiScanFile* find(const std::string& location) const;

  std::size_t total_entries() const;
};

/// One input skipped by a quarantining load: which source (file path
/// or archive entry name) and the structured reason.
struct QuarantinedFile {
  std::string source;
  Error error;
};

/// Outcome bookkeeping for a quarantining load.
struct LoadReport {
  /// Inputs skipped (work-list order: sorted paths / map entry order).
  std::vector<QuarantinedFile> quarantined;
  /// Inputs that parsed and made it into the collection.
  std::size_t files_loaded = 0;
};

/// Loads from a directory tree (recursive, `*.wiscan` files only) or
/// from a `.lar` archive file — dispatch on what `source` points at,
/// mirroring the paper's string-argument interface. Throws
/// FormatError / ArchiveError on malformed content, and FormatError
/// when `source` is neither a directory nor a `.lar` file.
///
/// With `pool`, the files are parsed in parallel across its workers.
/// The work list is fixed up front (paths sorted lexicographically,
/// archive entries in map order) and every worker writes into its own
/// index slot, so the loaded collection is byte-identical to the
/// serial path regardless of thread count or completion order.
///
/// With `report`, per-file failures (unreadable file, malformed rows)
/// are *quarantined*: the bad file is skipped, a structured diagnostic
/// lands in `report->quarantined`, and the rest of the batch loads
/// deterministically — identical to a clean run over the surviving
/// files. Whole-batch failures (bad source path, unreadable archive)
/// still throw. Without `report`, the first failure throws as before.
Collection load_collection(const std::filesystem::path& source,
                           concurrency::ThreadPool* pool = nullptr,
                           LoadReport* report = nullptr);

/// Loads from an in-memory archive (entries whose names end in
/// `.wiscan`).
Collection load_collection(const Archive& archive,
                           concurrency::ThreadPool* pool = nullptr,
                           LoadReport* report = nullptr);

}  // namespace loctk::wiscan

#include "wiscan/location_map.hpp"

#include <algorithm>
#include <fstream>
#include <limits>

#include "wiscan/scan_buffer.hpp"

namespace loctk::wiscan {

namespace {

void require(bool ok, const std::string& what) {
  if (!ok) throw LocationMapError(what);
}

// Writes a name, quoting when it contains whitespace or quotes.
void write_name(std::ostream& os, const std::string& name) {
  const bool needs_quotes =
      name.find_first_of(" \t\"") != std::string::npos || name.empty();
  if (!needs_quotes) {
    os << name;
    return;
  }
  os << '"';
  for (const char c : name) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

// Drains an already-open stream (compatibility adapter; the path
// overload goes through FileBuffer).
std::string slurp(std::istream& is) {
  std::string text;
  char chunk[4096];
  while (is.read(chunk, sizeof chunk) || is.gcount() > 0) {
    text.append(chunk, static_cast<std::size_t>(is.gcount()));
  }
  return text;
}

}  // namespace

void LocationMap::add(const std::string& name, geom::Vec2 position) {
  require(!contains(name), "location-map: duplicate name: " + name);
  entries_.push_back({name, position});
}

void LocationMap::set(const std::string& name, geom::Vec2 position) {
  for (NamedLocation& e : entries_) {
    if (e.name == name) {
      e.position = position;
      return;
    }
  }
  entries_.push_back({name, position});
}

bool LocationMap::contains(const std::string& name) const {
  return find(name).has_value();
}

std::optional<geom::Vec2> LocationMap::find(const std::string& name) const {
  const auto it = std::find_if(
      entries_.begin(), entries_.end(),
      [&](const NamedLocation& e) { return e.name == name; });
  if (it == entries_.end()) return std::nullopt;
  return it->position;
}

std::optional<std::string> LocationMap::nearest(geom::Vec2 p) const {
  if (entries_.empty()) return std::nullopt;
  const NamedLocation* best = nullptr;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (const NamedLocation& e : entries_) {
    const double d2 = geom::distance2(e.position, p);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = &e;
    }
  }
  return best->name;
}

void LocationMap::write(std::ostream& os) const {
  os << "# location-map v1\n";
  for (const NamedLocation& e : entries_) {
    write_name(os, e.name);
    os << '\t' << e.position.x << '\t' << e.position.y << '\n';
  }
}

void LocationMap::write(const std::filesystem::path& path) const {
  std::ofstream os(path);
  require(os.good(), "location-map: cannot open " + path.string());
  write(os);
  require(os.good(), "location-map: write failed for " + path.string());
}

LocationMap LocationMap::read(std::istream& is) {
  return parse_location_map_buffer(slurp(is));
}

LocationMap LocationMap::read(const std::filesystem::path& path) {
  try {
    const FileBuffer buffer(path);
    return parse_location_map_buffer(buffer.view());
  } catch (const BufferError& e) {
    throw LocationMapError("location-map: " + std::string(e.what()));
  }
}

}  // namespace loctk::wiscan

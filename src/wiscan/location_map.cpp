#include "wiscan/location_map.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>

namespace loctk::wiscan {

namespace {

void require(bool ok, const std::string& what) {
  if (!ok) throw LocationMapError(what);
}

// Writes a name, quoting when it contains whitespace or quotes.
void write_name(std::ostream& os, const std::string& name) {
  const bool needs_quotes =
      name.find_first_of(" \t\"") != std::string::npos || name.empty();
  if (!needs_quotes) {
    os << name;
    return;
  }
  os << '"';
  for (const char c : name) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

// Reads a possibly-quoted name starting at `pos`; advances pos past it.
std::string read_name(const std::string& line, std::size_t& pos,
                      std::size_t line_no) {
  require(pos < line.size(), "location-map: line " +
                                 std::to_string(line_no) + ": missing name");
  if (line[pos] != '"') {
    const auto end = line.find_first_of(" \t", pos);
    const std::string name =
        line.substr(pos, end == std::string::npos ? end : end - pos);
    pos = end == std::string::npos ? line.size() : end;
    return name;
  }
  ++pos;  // opening quote
  std::string name;
  while (pos < line.size()) {
    const char c = line[pos++];
    if (c == '\\' && pos < line.size()) {
      name.push_back(line[pos++]);
    } else if (c == '"') {
      return name;
    } else {
      name.push_back(c);
    }
  }
  throw LocationMapError("location-map: line " + std::to_string(line_no) +
                         ": unterminated quoted name");
}

}  // namespace

void LocationMap::add(const std::string& name, geom::Vec2 position) {
  require(!contains(name), "location-map: duplicate name: " + name);
  entries_.push_back({name, position});
}

void LocationMap::set(const std::string& name, geom::Vec2 position) {
  for (NamedLocation& e : entries_) {
    if (e.name == name) {
      e.position = position;
      return;
    }
  }
  entries_.push_back({name, position});
}

bool LocationMap::contains(const std::string& name) const {
  return find(name).has_value();
}

std::optional<geom::Vec2> LocationMap::find(const std::string& name) const {
  const auto it = std::find_if(
      entries_.begin(), entries_.end(),
      [&](const NamedLocation& e) { return e.name == name; });
  if (it == entries_.end()) return std::nullopt;
  return it->position;
}

std::optional<std::string> LocationMap::nearest(geom::Vec2 p) const {
  if (entries_.empty()) return std::nullopt;
  const NamedLocation* best = nullptr;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (const NamedLocation& e : entries_) {
    const double d2 = geom::distance2(e.position, p);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = &e;
    }
  }
  return best->name;
}

void LocationMap::write(std::ostream& os) const {
  os << "# location-map v1\n";
  for (const NamedLocation& e : entries_) {
    write_name(os, e.name);
    os << '\t' << e.position.x << '\t' << e.position.y << '\n';
  }
}

void LocationMap::write(const std::filesystem::path& path) const {
  std::ofstream os(path);
  require(os.good(), "location-map: cannot open " + path.string());
  write(os);
  require(os.good(), "location-map: write failed for " + path.string());
}

LocationMap LocationMap::read(std::istream& is) {
  LocationMap map;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const auto start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;

    std::size_t pos = start;
    const std::string name = read_name(line, pos, line_no);
    require(!name.empty(), "location-map: line " + std::to_string(line_no) +
                               ": empty name");
    std::istringstream coords(line.substr(pos));
    double x = 0.0, y = 0.0;
    coords >> x >> y;
    require(static_cast<bool>(coords),
            "location-map: line " + std::to_string(line_no) +
                ": expected two coordinates after name");
    map.set(name, {x, y});
  }
  return map;
}

LocationMap LocationMap::read(const std::filesystem::path& path) {
  std::ifstream is(path);
  require(is.good(), "location-map: cannot open " + path.string());
  return read(is);
}

}  // namespace loctk::wiscan

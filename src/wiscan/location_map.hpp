#pragma once

/// \file location_map.hpp
/// The location map: named locations <-> world coordinates.
///
/// The paper's Training Database Generator takes "a location map (a
/// text file of location names and coordinates)" (§4.3). Format:
///
///     # location-map v1
///     kitchen        42.0  8.5
///     "Room D22"     10.0 30.0
///
/// Names with spaces are double-quoted; coordinates are feet in the
/// floor plan's world frame.

#include <filesystem>
#include <istream>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "geom/vec2.hpp"

namespace loctk::wiscan {

class LocationMapError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One named location.
struct NamedLocation {
  std::string name;
  geom::Vec2 position;

  friend bool operator==(const NamedLocation&,
                         const NamedLocation&) = default;
};

/// Ordered collection of named locations with unique names.
class LocationMap {
 public:
  /// Adds a location; throws LocationMapError on duplicate names.
  void add(const std::string& name, geom::Vec2 position);

  /// Replaces or adds.
  void set(const std::string& name, geom::Vec2 position);

  bool contains(const std::string& name) const;
  std::optional<geom::Vec2> find(const std::string& name) const;

  /// Name of the location closest to `p`; nullopt when empty.
  std::optional<std::string> nearest(geom::Vec2 p) const;

  const std::vector<NamedLocation>& locations() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  void write(std::ostream& os) const;
  void write(const std::filesystem::path& path) const;
  static LocationMap read(std::istream& is);
  static LocationMap read(const std::filesystem::path& path);

  friend bool operator==(const LocationMap&, const LocationMap&) = default;

 private:
  std::vector<NamedLocation> entries_;
};

}  // namespace loctk::wiscan

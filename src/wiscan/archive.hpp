#pragma once

/// \file archive.hpp
/// `.lar` — a minimal multi-file container ("loctk archive").
///
/// The paper's Training Database Generator accepts wi-scan collections
/// either as "the name of a directory containing the wi-scan files or
/// a zip file containing the wi-scan files" (§4.3). We stand in for
/// zip with this trivially-verifiable container: a magic header
/// followed by (path-length, path, payload-length, payload) entries.
/// It is a *container*, not a compressor — the compression claims of
/// the paper are carried by the training-database codec instead
/// (see `loctk/traindb`).
///
/// Layout (all integers little-endian u64):
///     "LAR1"            4 bytes magic
///     entry count       u64
///     per entry:
///         name length   u64
///         name bytes    (UTF-8, '/'-separated relative path)
///         data length   u64
///         data bytes

#include <filesystem>
#include <istream>
#include <map>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace loctk::wiscan {

class ArchiveError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// In-memory archive: ordered map of relative path -> raw bytes.
class Archive {
 public:
  /// Adds or replaces an entry. Paths must be relative, non-empty,
  /// and contain no "." / ".." components (throws ArchiveError).
  void add(const std::string& path, std::string bytes);

  bool contains(const std::string& path) const;
  const std::string& bytes(const std::string& path) const;  // throws if absent
  std::size_t size() const { return entries_.size(); }

  const std::map<std::string, std::string>& entries() const {
    return entries_;
  }

  /// Serialization. The file overload maps the archive read-only and
  /// parses entries straight out of the buffer (one copy per entry,
  /// into the owning map); the istream overload is a compatibility
  /// adapter that drains the stream first.
  void write(std::ostream& os) const;
  void write(const std::filesystem::path& file) const;
  static Archive read(std::istream& is);
  static Archive read(const std::filesystem::path& file);
  static Archive read_bytes(std::string_view bytes);

  /// Packs every regular file under `dir` (recursively; paths stored
  /// relative to `dir`, '/'-separated).
  static Archive pack_directory(const std::filesystem::path& dir);

  /// Writes every entry as a file under `dir`, creating directories.
  void unpack_to(const std::filesystem::path& dir) const;

 private:
  static void validate_path(const std::string& path);
  std::map<std::string, std::string> entries_;
};

}  // namespace loctk::wiscan

#pragma once

/// \file parallel_for.hpp
/// Blocking data-parallel loops on top of ThreadPool.
///
/// `parallel_for` splits an index range into contiguous chunks — one
/// per worker by default — mirroring an OpenMP `parallel for` with
/// static scheduling. `parallel_reduce` runs a thread-local
/// accumulator per chunk and merges the partials in order, so
/// reductions whose merge is exact (e.g. `RunningStats::merge`) give
/// run-to-run identical results regardless of thread count.

#include <algorithm>
#include <cstddef>
#include <exception>
#include <future>
#include <vector>

#include "concurrency/thread_pool.hpp"

namespace loctk::concurrency {

/// Calls `body(i)` for every i in [begin, end) using `pool`.
/// Exceptions from any chunk propagate to the caller (first chunk's
/// exception wins). `grain` caps the minimum chunk size.
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  Body&& body, std::size_t grain = 1) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t workers = std::max<std::size_t>(1, pool.thread_count());
  const std::size_t chunk =
      std::max(grain, (n + workers - 1) / workers);

  std::vector<std::future<void>> futs;
  futs.reserve((n + chunk - 1) / chunk);
  for (std::size_t lo = begin; lo < end; lo += chunk) {
    const std::size_t hi = std::min(end, lo + chunk);
    futs.push_back(pool.submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

/// Convenience overload using the default pool.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, Body&& body,
                  std::size_t grain = 1) {
  parallel_for(default_pool(), begin, end, std::forward<Body>(body), grain);
}

/// Deterministic parallel reduction.
///
/// For each chunk, constructs `Acc acc = init;`, calls
/// `accumulate(acc, i)` over the chunk, then merges the chunk partials
/// left-to-right with `merge(total, partial)`. Returns the total.
template <typename Acc, typename Accumulate, typename Merge>
Acc parallel_reduce(ThreadPool& pool, std::size_t begin, std::size_t end,
                    Acc init, Accumulate&& accumulate, Merge&& merge,
                    std::size_t grain = 1) {
  if (begin >= end) return init;
  const std::size_t n = end - begin;
  const std::size_t workers = std::max<std::size_t>(1, pool.thread_count());
  const std::size_t chunk = std::max(grain, (n + workers - 1) / workers);

  std::vector<std::future<Acc>> futs;
  futs.reserve((n + chunk - 1) / chunk);
  for (std::size_t lo = begin; lo < end; lo += chunk) {
    const std::size_t hi = std::min(end, lo + chunk);
    futs.push_back(pool.submit([lo, hi, init, &accumulate]() {
      Acc acc = init;
      for (std::size_t i = lo; i < hi; ++i) accumulate(acc, i);
      return acc;
    }));
  }
  Acc total = init;
  std::exception_ptr first_error;
  for (auto& f : futs) {
    try {
      merge(total, f.get());
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return total;
}

template <typename Acc, typename Accumulate, typename Merge>
Acc parallel_reduce(std::size_t begin, std::size_t end, Acc init,
                    Accumulate&& accumulate, Merge&& merge,
                    std::size_t grain = 1) {
  return parallel_reduce(default_pool(), begin, end, std::move(init),
                         std::forward<Accumulate>(accumulate),
                         std::forward<Merge>(merge), grain);
}

}  // namespace loctk::concurrency

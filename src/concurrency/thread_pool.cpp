#include "concurrency/thread_pool.hpp"

#include <algorithm>

#include "base/metrics.hpp"

namespace loctk::concurrency {

namespace {

// Aggregated across every pool in the process (pools are cheap and
// plural; per-pool breakdown would need labeled metrics). queue_depth
// is last-write-wins, sampled at each enqueue/dequeue.
metrics::Counter& tasks_executed_counter() {
  static metrics::Counter& c = metrics::counter("threadpool.tasks_executed");
  return c;
}
metrics::Counter& uncaught_errors_counter() {
  static metrics::Counter& c =
      metrics::counter("threadpool.uncaught_task_errors");
  return c;
}
metrics::Gauge& queue_depth_gauge() {
  static metrics::Gauge& g = metrics::gauge("threadpool.queue_depth");
  return g;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::size_t ThreadPool::pending() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

void ThreadPool::post(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
    queue_depth_gauge().set(static_cast<double>(queue_.size()));
  }
  cv_.notify_one();
}

void ThreadPool::set_error_callback(ErrorCallback cb) {
  std::lock_guard lock(mutex_);
  error_callback_ = std::move(cb);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_gauge().set(static_cast<double>(queue_.size()));
    }
    // submit()'s packaged_task wrapper captures exceptions into the
    // future; anything that reaches here (post() tasks, or a wrapper
    // that itself threw) would escape the thread entry point and call
    // std::terminate. Capture it instead and keep the worker alive.
    try {
      task();
      tasks_executed_counter().increment();
    } catch (...) {
      tasks_executed_counter().increment();
      uncaught_errors_.fetch_add(1, std::memory_order_relaxed);
      uncaught_errors_counter().increment();
      ErrorCallback cb;
      {
        std::lock_guard lock(mutex_);
        cb = error_callback_;
      }
      if (cb) {
        try {
          cb(std::current_exception());
        } catch (...) {
          // A throwing error callback must not kill the worker either.
        }
      }
    }
  }
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace loctk::concurrency

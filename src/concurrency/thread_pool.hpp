#pragma once

/// \file thread_pool.hpp
/// A fixed-size worker pool with a shared task queue.
///
/// This is the shared-memory parallel substrate for the toolkit: the
/// Training Database Generator parses wi-scan files on all cores, and
/// the grid locators score candidate cells in parallel. The design
/// follows the usual HPC guidance: threads are created once, work is
/// submitted as value tasks, and shutdown joins everything (RAII — no
/// detached threads, no leaked futures).

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace loctk::concurrency {

/// Fixed-size thread pool. Tasks run in FIFO order across workers.
/// Destruction waits for already-queued tasks to finish.
class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins all workers after draining the queue.
  ~ThreadPool();

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueue a task; the future resolves with its result (or the
  /// exception it threw).
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    post([task]() { (*task)(); });
    return fut;
  }

  /// Fire-and-forget enqueue: no future, no packaged_task wrapper. If
  /// the task throws, the exception is routed to the error callback
  /// (set_error_callback) instead of terminating the worker — the pool
  /// survives and later tasks still run.
  void post(std::function<void()> task);

  /// Called (from the worker thread) with the exception of any task
  /// that threw without a future to capture it. Replaces the previous
  /// callback; pass nullptr to restore the default (count and drop).
  using ErrorCallback = std::function<void(std::exception_ptr)>;
  void set_error_callback(ErrorCallback cb);

  /// Tasks whose exceptions reached the worker loop (i.e. were not
  /// captured into a future). Includes ones forwarded to the callback.
  std::size_t uncaught_task_errors() const {
    return uncaught_errors_.load(std::memory_order_relaxed);
  }

  /// Number of tasks waiting (excluding running ones); for tests.
  std::size_t pending() const;

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  ErrorCallback error_callback_;
  std::atomic<std::size_t> uncaught_errors_{0};
  bool stop_ = false;
};

/// The process-wide default pool (lazily created, sized to the
/// hardware). Library code that does not receive an explicit pool
/// parallelizes on this one.
ThreadPool& default_pool();

}  // namespace loctk::concurrency

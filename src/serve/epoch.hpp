#pragma once

/// \file epoch.hpp
/// Epoch-based reclamation for hot-swappable snapshots.
///
/// The serving layer publishes each site's compiled database + locator
/// as an immutable snapshot behind a single atomic pointer. Readers on
/// the scan path must never take a lock, yet a recompile can replace
/// the snapshot at any moment — so the old snapshot may only be freed
/// once no reader can still be dereferencing it. `EpochDomain` answers
/// exactly that question with the classic epoch/RCU scheme:
///
///  * a monotonically increasing **epoch counter**, bumped once per
///    snapshot retirement;
///  * an array of cache-line-padded **reader slots**. A reader pins by
///    CAS-claiming a free slot and stamping it with the current epoch,
///    then loads the snapshot pointer; unpin is a single release store
///    of 0. No locks, no reference counts on a shared cache line —
///    concurrent readers touch disjoint lines;
///  * a writer-side **retire list**: each retired snapshot is stamped
///    with the epoch at which it stopped being current and freed once
///    every slot is either quiescent or pinned at a later epoch.
///
/// Memory-ordering argument (all epoch/slot/pointer operations are
/// seq_cst, so a single total order S exists): the reader claims its
/// slot with a seq_cst RMW *before* loading the snapshot pointer; the
/// writer swaps the pointer, bumps the epoch, and *then* scans the
/// slots. If the writer's scan misses a reader's claim, the claim is
/// later in S than the scan, hence the reader's pointer load is later
/// in S than the writer's pointer swap — the reader observes the new
/// snapshot, and the retired one is safe to free. If the scan sees the
/// claim, the stamped epoch is <= the retire epoch and the snapshot is
/// kept. Either way no reader can hold a freed pointer, and the reader
/// never loops or waits: pin is wait-free while any slot is free.
///
/// Writers (swap + reclaim) are expected to serialize externally (the
/// shard's swap mutex); readers need no coordination at all.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace loctk::serve {

class EpochDomain {
 public:
  /// `reader_slots` bounds the number of *simultaneously pinned*
  /// readers (not threads — a thread occupies a slot only while
  /// inside a guard). Sized generously by default; a pin that finds
  /// every slot busy spins until one frees (counted in slot_waits()).
  explicit EpochDomain(std::size_t reader_slots = 64);

  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  /// Frees everything still retired. Callers must ensure no reader is
  /// pinned (stop traffic before tearing down a shard).
  ~EpochDomain();

  /// RAII reader pin. While alive, no snapshot retired at or after the
  /// pinned epoch is reclaimed, so any pointer loaded inside the guard
  /// stays valid until the guard drops.
  class ReadGuard {
   public:
    explicit ReadGuard(EpochDomain& domain) : domain_(&domain) {
      slot_ = domain.pin();
    }
    ~ReadGuard() { domain_->unpin(slot_); }

    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;

    /// The epoch this reader is pinned at.
    std::uint64_t epoch() const {
      return domain_->slots_[slot_].state.load(std::memory_order_relaxed);
    }

   private:
    EpochDomain* domain_;
    std::size_t slot_;
  };

  /// Current epoch (starts at 1; bumped by every retire()).
  std::uint64_t current_epoch() const {
    return epoch_.load(std::memory_order_seq_cst);
  }

  /// Oldest epoch any pinned reader is stamped with; 0 when no reader
  /// is pinned. Advisory (racy by nature) — used for lag metrics and
  /// reclaim decisions, both of which tolerate staleness.
  std::uint64_t min_active_epoch() const;

  /// Writer side: takes ownership of a retired object, stamps it with
  /// the current epoch, bumps the epoch, and opportunistically frees
  /// whatever became safe. External serialization required (one
  /// writer at a time per domain).
  void retire(std::shared_ptr<const void> obj);

  /// Frees every retired object no reader can still see; returns how
  /// many were freed. Writer-side.
  std::size_t try_reclaim();

  /// Spins until the retire list drains (readers finish). Writer-side;
  /// for tests and teardown.
  void quiesce();

  /// Writer-side grace period: returns once every reader pinned
  /// *before* the call has unpinned (each slot is free or stamped at
  /// the current epoch). Pacing swaps with this guarantees no reader
  /// is ever pinned across two consecutive swaps — the zero-stall
  /// invariant the soak gates on — while readers themselves never
  /// wait for anything.
  void await_readers() const;

  /// Retired objects not yet freed.
  std::size_t retired_count() const;

  std::size_t reader_slot_count() const { return slots_.size(); }

  /// Pins that had to wait for a free slot (all slots busy). Staying
  /// at zero means the read path stayed wait-free.
  std::uint64_t slot_waits() const {
    return slot_waits_.load(std::memory_order_relaxed);
  }

  /// Readers observed pinned more than one epoch behind at reclaim
  /// time — i.e. a reader that stayed pinned across two consecutive
  /// swaps. The soak gate requires zero.
  std::uint64_t reader_stalls() const {
    return reader_stalls_.load(std::memory_order_relaxed);
  }

 private:
  friend class ReadGuard;

  struct alignas(64) Slot {
    /// 0 = free/quiescent; otherwise the epoch the occupant pinned at.
    std::atomic<std::uint64_t> state{0};
  };

  struct Retired {
    std::shared_ptr<const void> obj;
    std::uint64_t epoch = 0;
  };

  std::size_t pin();
  void unpin(std::size_t slot) {
    slots_[slot].state.store(0, std::memory_order_seq_cst);
  }

  std::atomic<std::uint64_t> epoch_{1};
  std::vector<Slot> slots_;
  /// Writer-side only (serialized by the caller), so a plain vector.
  std::vector<Retired> retired_;
  std::atomic<std::uint64_t> slot_waits_{0};
  std::atomic<std::uint64_t> reader_stalls_{0};
};

}  // namespace loctk::serve

#include "serve/epoch.hpp"

#include <algorithm>
#include <thread>

namespace loctk::serve {

namespace {

/// splitmix-style hash of the thread id, so threads start probing at
/// different slots and the common case is one CAS on a private line.
std::size_t thread_slot_hint(std::size_t slots) {
  const std::size_t id =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  std::uint64_t z = static_cast<std::uint64_t>(id) + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return static_cast<std::size_t>(z % slots);
}

}  // namespace

EpochDomain::EpochDomain(std::size_t reader_slots)
    : slots_(std::max<std::size_t>(1, reader_slots)) {}

EpochDomain::~EpochDomain() {
  // No reader may be pinned here (contract); everything retired is
  // therefore reclaimable.
  retired_.clear();
}

std::size_t EpochDomain::pin() {
  const std::size_t n = slots_.size();
  const std::size_t start = thread_slot_hint(n);
  for (;;) {
    for (std::size_t probe = 0; probe < n; ++probe) {
      const std::size_t i = (start + probe) % n;
      std::uint64_t expected = 0;
      // Claim-and-stamp in one seq_cst RMW: globally visible before
      // the caller's subsequent snapshot-pointer load (see the
      // ordering argument in the header).
      const std::uint64_t e = epoch_.load(std::memory_order_seq_cst);
      if (slots_[i].state.compare_exchange_strong(
              expected, e, std::memory_order_seq_cst)) {
        return i;
      }
    }
    // Every slot busy: more simultaneous pins than slots. Back off and
    // retry — pins last one locate, so this resolves in microseconds.
    slot_waits_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::yield();
  }
}

std::uint64_t EpochDomain::min_active_epoch() const {
  std::uint64_t min = 0;
  for (const Slot& slot : slots_) {
    const std::uint64_t e = slot.state.load(std::memory_order_seq_cst);
    if (e != 0 && (min == 0 || e < min)) min = e;
  }
  return min;
}

void EpochDomain::retire(std::shared_ptr<const void> obj) {
  // Stamp with the epoch during which the object was still current,
  // then advance. A reader pinned at <= this epoch may hold the object.
  const std::uint64_t e = epoch_.fetch_add(1, std::memory_order_seq_cst);
  if (obj) retired_.push_back({std::move(obj), e});
  try_reclaim();
}

std::size_t EpochDomain::try_reclaim() {
  if (retired_.empty()) return 0;
  const std::uint64_t now = epoch_.load(std::memory_order_seq_cst);
  // One slot scan covers every retired entry: an entry stamped E is
  // safe once every slot is free or pinned strictly after E.
  std::uint64_t oldest_pin = 0;
  for (const Slot& slot : slots_) {
    const std::uint64_t e = slot.state.load(std::memory_order_seq_cst);
    if (e != 0) {
      if (oldest_pin == 0 || e < oldest_pin) oldest_pin = e;
      if (now >= e + 2) {
        // Pinned across two or more epoch bumps: a genuinely stalled
        // reader (the soak gate requires this never happens).
        reader_stalls_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  const auto safe = [&](const Retired& r) {
    return oldest_pin == 0 || r.epoch < oldest_pin;
  };
  const std::size_t before = retired_.size();
  retired_.erase(std::remove_if(retired_.begin(), retired_.end(), safe),
                 retired_.end());
  return before - retired_.size();
}

void EpochDomain::await_readers() const {
  const std::uint64_t now = epoch_.load(std::memory_order_seq_cst);
  for (const Slot& slot : slots_) {
    // A slot stamped before `now` belongs to a reader that pinned
    // before this call; wait it out. Slots (re)claimed from here on
    // are stamped >= now and don't block the grace period.
    while (true) {
      const std::uint64_t e = slot.state.load(std::memory_order_seq_cst);
      if (e == 0 || e >= now) break;
      std::this_thread::yield();
    }
  }
}

void EpochDomain::quiesce() {
  while (!retired_.empty()) {
    if (try_reclaim() == 0) std::this_thread::yield();
  }
}

std::size_t EpochDomain::retired_count() const { return retired_.size(); }

}  // namespace loctk::serve

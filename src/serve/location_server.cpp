#include "serve/location_server.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace loctk::serve {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

metrics::Counter& total_scans_counter() {
  static metrics::Counter& c = metrics::counter("serve.scans");
  return c;
}
metrics::Counter& total_swaps_counter() {
  static metrics::Counter& c = metrics::counter("serve.swaps");
  return c;
}
metrics::Counter& unknown_site_counter() {
  static metrics::Counter& c = metrics::counter("serve.unknown_site");
  return c;
}

core::ServiceFix degraded_fix(const char* reason) {
  core::ServiceFix fix;
  fix.valid = false;
  fix.degraded_reason = reason;
  return fix;
}

}  // namespace

LocationServer::LocationServer(LocationServerConfig config)
    : config_(config) {
  config_.max_sites = std::max<std::size_t>(1, config_.max_sites);
  sites_.resize(config_.max_sites);
}

LocationServer::~LocationServer() {
  // Contract: traffic has stopped, so every epoch domain can drain.
  const std::size_t n = site_count();
  for (std::size_t i = 0; i < n; ++i) {
    sites_[i]->epochs.quiesce();
  }
}

LocationServer::Shard* LocationServer::shard(SiteId site) const {
  if (site >= site_count_.load(std::memory_order_acquire)) return nullptr;
  return sites_[site].get();
}

LocationServer::Shard& LocationServer::checked_shard(SiteId site) const {
  Shard* s = shard(site);
  if (!s) throw std::invalid_argument("LocationServer: unknown site id");
  return *s;
}

SiteId LocationServer::add_site(
    std::string name, std::shared_ptr<const core::Locator> locator) {
  if (!locator) {
    throw std::invalid_argument("LocationServer: null locator");
  }
  std::lock_guard<std::mutex> lock(control_mutex_);
  for (const std::string& existing : names_) {
    if (existing == name) {
      throw std::invalid_argument("LocationServer: duplicate site '" +
                                  name + "'");
    }
  }
  const std::size_t index = site_count_.load(std::memory_order_relaxed);
  if (index >= config_.max_sites) {
    throw std::invalid_argument("LocationServer: max_sites reached");
  }

  auto shard = std::make_unique<Shard>(config_.reader_slots,
                                       config_.sessions_per_site,
                                       config_.session_stripes);
  shard->name = name;
  const std::string prefix = "serve.shard." + name + ".";
  shard->scans_counter = &metrics::counter(prefix + "scans");
  shard->swaps_counter = &metrics::counter(prefix + "swaps");
  shard->rejected_counter = &metrics::counter(prefix + "sessions_rejected");
  shard->errors_counter = &metrics::counter(prefix + "errors");
  shard->generation_gauge = &metrics::gauge(prefix + "generation");
  shard->epoch_lag_gauge = &metrics::gauge(prefix + "epoch_lag");
  shard->sessions_gauge = &metrics::gauge(prefix + "sessions");
  shard->on_scan_hist = &metrics::histogram(prefix + "on_scan.seconds");
  shard->swap_hist = &metrics::histogram(prefix + "swap.seconds");

  auto snapshot = std::make_shared<const SiteSnapshot>(
      SiteSnapshot{std::move(locator), 1});
  shard->current.store(snapshot.get(), std::memory_order_seq_cst);
  shard->owner = std::move(snapshot);
  shard->generation.store(1, std::memory_order_relaxed);
  shard->generation_gauge->set(1.0);

  sites_[index] = std::move(shard);
  names_.push_back(std::move(name));
  // Publish the slot only after it is fully built; data-plane readers
  // acquire-load the count before indexing.
  site_count_.store(index + 1, std::memory_order_release);
  return static_cast<SiteId>(index);
}

std::uint64_t LocationServer::swap_site(
    SiteId site, std::shared_ptr<const core::Locator> locator) {
  if (!locator) {
    throw std::invalid_argument("LocationServer: null locator");
  }
  Shard& s = checked_shard(site);
  const Clock::time_point start = Clock::now();
  std::lock_guard<std::mutex> lock(s.swap_mutex);

  // Grace period before publishing: wait out every reader still pinned
  // behind the previous swap. This bounds the retire list to one
  // generation and makes it structurally impossible for a reader to be
  // pinned across two swaps (the zero-stall gate) — the cost lands
  // entirely on the writer; readers never wait.
  s.epochs.await_readers();

  const std::uint64_t generation =
      s.generation.fetch_add(1, std::memory_order_relaxed) + 1;
  auto snapshot = std::make_shared<const SiteSnapshot>(
      SiteSnapshot{std::move(locator), generation});

  // Publish first, then retire: a reader that pins after the epoch
  // bump is guaranteed (see epoch.hpp) to observe this store.
  s.current.store(snapshot.get(), std::memory_order_seq_cst);
  std::shared_ptr<const SiteSnapshot> old = std::move(s.owner);
  s.owner = std::move(snapshot);
  s.epochs.retire(std::move(old));

  const std::uint64_t min_pin = s.epochs.min_active_epoch();
  const std::uint64_t epoch = s.epochs.current_epoch();
  s.epoch_lag_gauge->set(
      min_pin == 0 ? 0.0 : static_cast<double>(epoch - min_pin));
  s.generation_gauge->set(static_cast<double>(generation));
  s.swaps_counter->increment();
  total_swaps_counter().increment();
  s.swap_hist->record(seconds_since(start));
  return generation;
}

std::optional<SiteId> LocationServer::find_site(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(control_mutex_);
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<SiteId>(i);
  }
  return std::nullopt;
}

SiteStats LocationServer::stats(SiteId site) const {
  Shard& s = checked_shard(site);
  SiteStats stats;
  stats.name = s.name;
  stats.generation = s.generation.load(std::memory_order_relaxed);
  stats.epoch = s.epochs.current_epoch();
  stats.scans = s.scans_counter->value();
  stats.sessions = s.sessions.size();
  stats.retired_snapshots = s.epochs.retired_count();
  stats.reader_stalls = s.epochs.reader_stalls();
  stats.sessions_rejected = s.rejected_counter->value();
  stats.errors = s.errors_counter->value();
  return stats;
}

std::size_t LocationServer::reclaim(SiteId site) {
  Shard& s = checked_shard(site);
  std::lock_guard<std::mutex> lock(s.swap_mutex);
  return s.epochs.try_reclaim();
}

core::ServiceFix LocationServer::on_scan(SiteId site, DeviceId device,
                                         const radio::ScanRecord& scan) {
  Shard* s = shard(site);
  if (!s) {
    unknown_site_counter().increment();
    return degraded_fix("[degenerate] serve: unknown site");
  }
  const Clock::time_point start = Clock::now();

  // Wait-free snapshot pin: one CAS on a striped epoch slot, then a
  // plain pointer load. No lock, no refcount on a shared line.
  EpochDomain::ReadGuard guard(s->epochs);
  const SiteSnapshot* snap = s->current.load(std::memory_order_seq_cst);

  Session* session = s->sessions.find_or_create(device, config_.service);
  if (!session) {
    s->rejected_counter->increment();
    return degraded_fix("[degenerate] serve: session table full");
  }

  // Serializes this device with itself only; concurrent devices hold
  // different sessions and never touch this flag.
  session->lock();
  core::ServiceFix fix;
  try {
    fix = session->service.on_scan(*snap->locator, scan);
    session->unlock();
  } catch (const std::exception& e) {
    // The data plane must not unwind on hostile input (docs/SERVING.md):
    // a throwing locator degrades this one scan and is counted in
    // serve.shard.<site>.errors; the session (window, Kalman track)
    // survives for the next scan.
    session->unlock();
    s->errors_counter->increment();
    fix = degraded_fix("[internal] serve: locator unwound on scan");
    fix.degraded_reason += ": ";
    fix.degraded_reason += e.what();
  } catch (...) {
    session->unlock();
    s->errors_counter->increment();
    fix = degraded_fix("[internal] serve: locator unwound on scan");
  }

  s->scans_counter->increment();
  total_scans_counter().increment();
  s->sessions_gauge->set(static_cast<double>(s->sessions.size()));
  s->on_scan_hist->record(seconds_since(start));
  return fix;
}

Result<core::LocationEstimate> LocationServer::try_locate(
    SiteId site, const core::Observation& obs) const {
  Shard* s = shard(site);
  if (!s) {
    return Error(ErrorCode::kDegenerate, "serve: unknown site");
  }
  EpochDomain::ReadGuard guard(s->epochs);
  const SiteSnapshot* snap = s->current.load(std::memory_order_seq_cst);
  return snap->locator->try_locate(obs);
}

std::vector<core::LocationEstimate> LocationServer::locate_batch(
    SiteId site, std::span<const core::Observation> obs,
    concurrency::ThreadPool* pool) const {
  Shard& s = checked_shard(site);
  // The guard pins for the whole batch: even if a swap lands while
  // pool workers are mid-chunk, the pinned snapshot stays alive and
  // every element is scored by one generation.
  EpochDomain::ReadGuard guard(s.epochs);
  const SiteSnapshot* snap = s.current.load(std::memory_order_seq_cst);
  return snap->locator->locate_batch(obs, pool);
}

std::uint64_t LocationServer::generation(SiteId site) const {
  Shard* s = shard(site);
  return s ? s->generation.load(std::memory_order_relaxed) : 0;
}

}  // namespace loctk::serve

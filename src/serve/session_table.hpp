#pragma once

/// \file session_table.hpp
/// Sharded, open-addressed per-device session storage.
///
/// Every device talking to a site shard owns one `Session`: the
/// sliding scan window, Kalman track, and degraded-mode counters that
/// must survive snapshot swaps (a republished radio map must not reset
/// anyone's track). The table is built so concurrent *distinct*
/// devices never contend:
///
///  * fixed capacity, decided at construction — no rehash, so lookup
///    never races a table-wide move;
///  * keys claimed lock-free: a probe either finds the device's entry
///    or CAS-claims an empty one (key 0 = empty); losers of the claim
///    race re-read and converge on the winner's entry;
///  * stripes: the key hash picks one of S independent sub-tables, so
///    even claim traffic for different devices lands on different
///    cache regions;
///  * per-session spinlock: two racing scans for the *same* device
///    serialize (a device's scans are ordered by definition); scans
///    for different devices share nothing.
///
/// A full table returns nullptr and the server degrades that scan
/// (counted in `serve.shard.*.sessions_rejected`) instead of blocking
/// or evicting — production admission control belongs above this
/// layer.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/location_service.hpp"

namespace loctk::serve {

/// Device ids are opaque nonzero 64-bit values (0 marks an empty
/// table cell).
using DeviceId = std::uint64_t;

/// One device's serving state. The embedded `LocationService` is
/// unbound (no locator): each scan supplies the shard's currently
/// pinned snapshot locator instead, which is what makes the session
/// survive hot swaps.
struct Session {
  explicit Session(const core::LocationServiceConfig& config)
      : service(config) {}

  core::LocationService service;

  /// Serializes same-device scans; never contended across devices.
  void lock() {
    while (busy_.test_and_set(std::memory_order_acquire)) {
      busy_.wait(true, std::memory_order_relaxed);
    }
  }
  void unlock() {
    busy_.clear(std::memory_order_release);
    busy_.notify_one();
  }

 private:
  std::atomic_flag busy_ = ATOMIC_FLAG_INIT;
};

class SessionTable {
 public:
  /// `capacity` is rounded up to a power of two and split across
  /// `stripes` (also rounded to a power of two).
  explicit SessionTable(std::size_t capacity = 1 << 14,
                        std::size_t stripes = 16);

  SessionTable(const SessionTable&) = delete;
  SessionTable& operator=(const SessionTable&) = delete;
  ~SessionTable();

  /// Finds `device`'s session, creating it on first contact. Lock-free
  /// (bounded CAS probes). Returns nullptr when the device is new and
  /// its stripe is full.
  Session* find_or_create(DeviceId device,
                          const core::LocationServiceConfig& config);

  /// Lookup without creation; nullptr when absent. When the device's
  /// key is already claimed by a racing find_or_create whose session
  /// pointer is not yet published, this waits for publication (the
  /// device exists — returning nullptr would break the contract).
  Session* find(DeviceId device) const;

  /// Live sessions across all stripes.
  std::size_t size() const {
    return size_.load(std::memory_order_relaxed);
  }

  std::size_t capacity() const {
    return stripes_.size() * (stripe_mask_ + 1);
  }
  std::size_t stripe_count() const { return stripes_.size(); }

 private:
  struct Cell {
    std::atomic<DeviceId> key{0};
    std::atomic<Session*> session{nullptr};
  };

  struct Stripe {
    std::unique_ptr<Cell[]> cells;
  };

  static std::uint64_t mix(DeviceId key);

  std::vector<Stripe> stripes_;
  std::size_t stripe_mask_ = 0;  ///< cells per stripe - 1
  std::size_t stripe_shift_ = 0;
  std::atomic<std::size_t> size_{0};
};

}  // namespace loctk::serve

#pragma once

/// \file location_server.hpp
/// The multi-tenant serving core: N sites × M devices, lock-free on
/// the scan path, hot-swappable per-site snapshots.
///
/// One process serves many surveyed venues ("sites") at once. Each
/// site is a **shard** holding
///
///  * an immutable `SiteSnapshot` — a trained locator over its
///    compiled database — published through a single atomic pointer
///    and reclaimed via the shard's `EpochDomain` (epoch.hpp), so a
///    recompiled radio map can replace the live one mid-traffic with
///    zero reader locks and zero reader stalls;
///  * a `SessionTable` of per-device state (scan window, Kalman track,
///    degraded-mode counters) that deliberately *survives* swaps: a
///    republished map must not reset anyone's track;
///  * its own metrics (`serve.shard.<site>.*`: scans, swap generation,
///    epoch lag, on_scan latency) in the process registry.
///
/// The data plane (`on_scan`, `try_locate`, `locate_batch`) takes no
/// lock anywhere: site lookup is an index into a fixed array, the
/// snapshot pin is one CAS on a striped epoch slot, the session lookup
/// is lock-free open addressing, and the only "lock" ever touched is
/// the per-session spinlock that serializes scans of one device with
/// itself. The control plane (`add_site`, `swap_site`) serializes on
/// mutexes — swaps are rare and may be slow; readers must never be.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "base/metrics.hpp"
#include "core/location_service.hpp"
#include "core/locator.hpp"
#include "serve/epoch.hpp"
#include "serve/session_table.hpp"

namespace loctk::serve {

/// Dense site handle (index into the server's shard array).
using SiteId = std::uint32_t;

struct LocationServerConfig {
  /// Per-device session behavior (window, Kalman, debounce).
  core::LocationServiceConfig service;
  /// Hard cap on sites; the shard array is laid out once so the data
  /// plane can index it without synchronization.
  std::size_t max_sites = 256;
  /// Session-table capacity and striping per site.
  std::size_t sessions_per_site = 1 << 14;
  std::size_t session_stripes = 16;
  /// Simultaneous pinned readers per shard (see EpochDomain).
  std::size_t reader_slots = 64;
};

/// The immutable unit of publication: one trained locator (which owns
/// its compiled database) plus the swap generation that produced it.
struct SiteSnapshot {
  std::shared_ptr<const core::Locator> locator;
  std::uint64_t generation = 0;
};

/// Control-plane view of one shard's health.
struct SiteStats {
  std::string name;
  std::uint64_t generation = 0;   ///< snapshot swaps + 1
  std::uint64_t epoch = 0;        ///< reclamation epoch
  std::uint64_t scans = 0;
  std::size_t sessions = 0;
  std::size_t retired_snapshots = 0;  ///< retired, not yet reclaimed
  std::uint64_t reader_stalls = 0;
  std::uint64_t sessions_rejected = 0;
  /// Scans on which the locator unwound and the fix degraded instead
  /// (`serve.shard.<site>.errors`).
  std::uint64_t errors = 0;
};

class LocationServer {
 public:
  explicit LocationServer(LocationServerConfig config = {});

  LocationServer(const LocationServer&) = delete;
  LocationServer& operator=(const LocationServer&) = delete;

  /// Stop traffic before destroying the server (readers must have
  /// unpinned; in-flight on_scan over a dying server is UB, exactly as
  /// for any object).
  ~LocationServer();

  // --- control plane (locked; rare) -------------------------------

  /// Registers a site and publishes its first snapshot (generation 1).
  /// Throws std::invalid_argument on a duplicate name, a null locator,
  /// or a full server.
  SiteId add_site(std::string name,
                  std::shared_ptr<const core::Locator> locator);

  /// Hot-swaps `site`'s snapshot under live traffic: waits out the
  /// grace period of the *previous* swap (so no reader is ever pinned
  /// across two swaps and at most one retired generation exists),
  /// publishes the new locator, retires the old snapshot into the
  /// epoch domain, and reclaims whatever became safe. In-flight scans
  /// finish on the snapshot they pinned; every scan that pins
  /// afterwards sees the new one. Returns the new generation.
  /// Thread-safe against readers by construction and against other
  /// swappers by the shard mutex; the wait costs the writer, never a
  /// reader.
  std::uint64_t swap_site(SiteId site,
                          std::shared_ptr<const core::Locator> locator);

  std::optional<SiteId> find_site(std::string_view name) const;
  std::size_t site_count() const {
    return site_count_.load(std::memory_order_acquire);
  }
  SiteStats stats(SiteId site) const;

  /// Frees retired snapshots that became safe since the last swap.
  /// Swaps already reclaim opportunistically; this is a control-plane
  /// nudge (e.g. a janitor tick) for long swap-free stretches.
  std::size_t reclaim(SiteId site);

  // --- data plane (lock-free; hot) --------------------------------

  /// Feeds one scan from `device` at `site` through the device's
  /// session against the currently published snapshot. Unknown sites,
  /// a full session table, and a locator that unwinds mid-scan all
  /// come back as an invalid, degraded fix rather than an exception —
  /// the serving loop must not unwind on ANY input. Locator unwinds
  /// are counted in `serve.shard.<site>.errors` (SiteStats::errors).
  core::ServiceFix on_scan(SiteId site, DeviceId device,
                           const radio::ScanRecord& scan);

  /// Stateless one-shot localization against `site`'s current
  /// snapshot (no session is created).
  Result<core::LocationEstimate> try_locate(
      SiteId site, const core::Observation& obs) const;

  /// Batch localization against one pinned snapshot: the whole batch
  /// is scored by the same generation even if a swap lands mid-batch.
  std::vector<core::LocationEstimate> locate_batch(
      SiteId site, std::span<const core::Observation> obs,
      concurrency::ThreadPool* pool = nullptr) const;

  /// Current swap generation of `site` (0 for unknown sites).
  std::uint64_t generation(SiteId site) const;

  const LocationServerConfig& config() const { return config_; }

 private:
  struct Shard {
    std::string name;
    EpochDomain epochs;
    /// Owned by `owner` (and by the epoch retire list after a swap);
    /// readers dereference the raw pointer only under a ReadGuard.
    std::atomic<const SiteSnapshot*> current{nullptr};
    std::shared_ptr<const SiteSnapshot> owner;  ///< guarded by swap_mutex
    std::mutex swap_mutex;
    SessionTable sessions;
    std::atomic<std::uint64_t> generation{0};

    // Resolved once at add_site; hot path touches only atomics.
    metrics::Counter* scans_counter = nullptr;
    metrics::Counter* swaps_counter = nullptr;
    metrics::Counter* rejected_counter = nullptr;
    metrics::Counter* errors_counter = nullptr;
    metrics::Gauge* generation_gauge = nullptr;
    metrics::Gauge* epoch_lag_gauge = nullptr;
    metrics::Gauge* sessions_gauge = nullptr;
    metrics::HistogramMetric* on_scan_hist = nullptr;
    metrics::HistogramMetric* swap_hist = nullptr;

    Shard(std::size_t reader_slots, std::size_t session_capacity,
          std::size_t session_stripes)
        : epochs(reader_slots),
          sessions(session_capacity, session_stripes) {}
  };

  /// nullptr for out-of-range ids (data plane treats that as a
  /// degraded scan, control plane throws).
  Shard* shard(SiteId site) const;
  Shard& checked_shard(SiteId site) const;

  LocationServerConfig config_;
  /// Fixed-size array so data-plane indexing never races growth:
  /// add_site fills sites_[n] first, then publishes n+1 with release.
  std::vector<std::unique_ptr<Shard>> sites_;
  std::atomic<std::size_t> site_count_{0};
  mutable std::mutex control_mutex_;  ///< add_site / find_site registry
  std::vector<std::string> names_;    ///< guarded by control_mutex_
};

}  // namespace loctk::serve

#include "serve/session_table.hpp"

#include <algorithm>
#include <bit>
#include <thread>

namespace loctk::serve {

namespace {

std::size_t round_pow2(std::size_t n) {
  return std::bit_ceil(std::max<std::size_t>(1, n));
}

}  // namespace

std::uint64_t SessionTable::mix(DeviceId key) {
  std::uint64_t z = key + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

SessionTable::SessionTable(std::size_t capacity, std::size_t stripes) {
  const std::size_t stripe_count = round_pow2(stripes);
  const std::size_t cells =
      round_pow2((round_pow2(capacity) + stripe_count - 1) / stripe_count);
  stripe_mask_ = cells - 1;
  stripe_shift_ = static_cast<std::size_t>(std::countr_zero(cells));
  stripes_.resize(stripe_count);
  for (Stripe& stripe : stripes_) {
    stripe.cells = std::make_unique<Cell[]>(cells);
  }
}

SessionTable::~SessionTable() {
  for (Stripe& stripe : stripes_) {
    for (std::size_t i = 0; i <= stripe_mask_; ++i) {
      delete stripe.cells[i].session.load(std::memory_order_acquire);
    }
  }
}

Session* SessionTable::find_or_create(
    DeviceId device, const core::LocationServiceConfig& config) {
  if (device == 0) return nullptr;
  const std::uint64_t h = mix(device);
  Stripe& stripe = stripes_[h & (stripes_.size() - 1)];
  const std::size_t start =
      static_cast<std::size_t>(h >> stripe_shift_) & stripe_mask_;
  for (std::size_t probe = 0; probe <= stripe_mask_; ++probe) {
    Cell& cell = stripe.cells[(start + probe) & stripe_mask_];
    DeviceId k = cell.key.load(std::memory_order_acquire);
    if (k == 0) {
      // Claim the empty cell; a losing racer re-reads and either finds
      // our key (falls through below) or keeps probing.
      if (cell.key.compare_exchange_strong(k, device,
                                           std::memory_order_acq_rel)) {
        Session* created = new Session(config);
        cell.session.store(created, std::memory_order_release);
        size_.fetch_add(1, std::memory_order_relaxed);
        return created;
      }
    }
    if (k == device || cell.key.load(std::memory_order_acquire) == device) {
      // Winner may still be constructing; its store is release, our
      // loop load is acquire, so the session is fully built once seen.
      for (;;) {
        Session* s = cell.session.load(std::memory_order_acquire);
        if (s) return s;
        std::this_thread::yield();
      }
    }
  }
  return nullptr;  // stripe full
}

Session* SessionTable::find(DeviceId device) const {
  if (device == 0) return nullptr;
  const std::uint64_t h = mix(device);
  const Stripe& stripe = stripes_[h & (stripes_.size() - 1)];
  const std::size_t start =
      static_cast<std::size_t>(h >> stripe_shift_) & stripe_mask_;
  for (std::size_t probe = 0; probe <= stripe_mask_; ++probe) {
    const Cell& cell = stripe.cells[(start + probe) & stripe_mask_];
    const DeviceId k = cell.key.load(std::memory_order_acquire);
    if (k == 0) return nullptr;
    if (k == device) {
      // The key being visible means the device exists: the winner has
      // CAS-claimed the cell but may not have published the session
      // pointer yet. Wait for publication exactly like find_or_create
      // does — returning nullptr here would violate the "nullptr when
      // absent" contract for a device that *is* present.
      for (;;) {
        Session* s = cell.session.load(std::memory_order_acquire);
        if (s) return s;
        std::this_thread::yield();
      }
    }
  }
  return nullptr;
}

}  // namespace loctk::serve

#pragma once

/// \file polygon.hpp
/// Simple polygons: point containment, area, convex hull.
///
/// Floor plans are not always rectangular; the environment model
/// accepts an arbitrary simple-polygon footprint, and the evaluation
/// harness uses the convex hull of training points to decide whether a
/// test point is inside the surveyed area.

#include <vector>

#include "geom/rect.hpp"
#include "geom/vec2.hpp"

namespace loctk::geom {

/// A simple polygon stored as its vertex loop (no repeated closing
/// vertex). Orientation may be either way; `signed_area()` exposes it.
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<Vec2> vertices)
      : vertices_(std::move(vertices)) {}

  const std::vector<Vec2>& vertices() const { return vertices_; }
  std::size_t size() const { return vertices_.size(); }
  bool empty() const { return vertices_.empty(); }

  /// Signed area: positive for counter-clockwise vertex order.
  double signed_area() const;

  /// Absolute area.
  double area() const;

  /// Centroid (area-weighted); vertex mean for degenerate polygons.
  Vec2 centroid() const;

  /// Even-odd point-in-polygon test; boundary points count as inside.
  bool contains(Vec2 p, double eps = 1e-9) const;

  /// Axis-aligned bounding box; a zero Rect for the empty polygon.
  Rect bounding_box() const;

  /// Perimeter length.
  double perimeter() const;

 private:
  std::vector<Vec2> vertices_;
};

/// Convex hull (Andrew monotone chain) in counter-clockwise order.
/// Collinear points on the hull boundary are dropped. Inputs with
/// fewer than 3 distinct points return what is available.
Polygon convex_hull(std::vector<Vec2> points);

/// Component-wise median of a point set: the paper's §5.2 estimator
/// over the circle-pair intersection points P1..P4. For even counts
/// each coordinate is the average of the two middle values.
/// Precondition: `points` is non-empty.
Vec2 component_median(std::vector<Vec2> points);

/// Geometric median via Weiszfeld iteration — a robustness baseline
/// against the paper's component-wise median. Returns the component
/// median when iteration fails to move (e.g. a sample coincides with
/// the current iterate).
Vec2 geometric_median(const std::vector<Vec2>& points,
                      int max_iters = 128, double tol = 1e-9);

/// Arithmetic mean of a point set. Precondition: non-empty.
Vec2 mean_point(const std::vector<Vec2>& points);

}  // namespace loctk::geom

#include "geom/vec2.hpp"

#include <ostream>

namespace loctk::geom {

std::ostream& operator<<(std::ostream& os, Vec2 v) {
  return os << '(' << v.x << ", " << v.y << ')';
}

}  // namespace loctk::geom

#pragma once

/// \file segment.hpp
/// Line segments and segment intersection tests.
///
/// Segments model walls in the radio environment: the RADAR-style wall
/// attenuation factor (WAF) needs the number of walls crossed by the
/// straight line between an access point and the receiver, which is a
/// sequence of segment-segment intersection tests.

#include <optional>

#include "geom/vec2.hpp"

namespace loctk::geom {

/// A directed line segment from `a` to `b`.
struct Segment {
  Vec2 a;
  Vec2 b;

  constexpr Segment() = default;
  constexpr Segment(Vec2 a_, Vec2 b_) : a(a_), b(b_) {}

  friend constexpr bool operator==(const Segment&, const Segment&) = default;

  double length() const { return distance(a, b); }
  constexpr double length2() const { return distance2(a, b); }
  constexpr Vec2 direction() const { return b - a; }
  constexpr Vec2 point_at(double t) const { return lerp(a, b, t); }
};

/// Orientation of the triple (a, b, c): positive for counter-clockwise,
/// negative for clockwise, ~0 for collinear.
constexpr double orientation(Vec2 a, Vec2 b, Vec2 c) {
  return (b - a).cross(c - a);
}

/// True when point `p` lies on segment `s` (within `eps`).
bool on_segment(const Segment& s, Vec2 p, double eps = 1e-9);

/// True when the two segments share at least one point (including
/// touching endpoints and collinear overlap).
bool segments_intersect(const Segment& s1, const Segment& s2,
                        double eps = 1e-12);

/// Proper intersection point of two non-parallel segments, if it lies
/// within both; `nullopt` for parallel/collinear or disjoint segments.
std::optional<Vec2> segment_intersection(const Segment& s1,
                                         const Segment& s2,
                                         double eps = 1e-12);

/// Distance from point `p` to the closest point of segment `s`.
double point_segment_distance(Vec2 p, const Segment& s);

/// Closest point on segment `s` to `p`.
Vec2 closest_point_on_segment(Vec2 p, const Segment& s);

}  // namespace loctk::geom

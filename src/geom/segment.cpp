#include "geom/segment.hpp"

#include <algorithm>
#include <cmath>

namespace loctk::geom {

bool on_segment(const Segment& s, Vec2 p, double eps) {
  if (std::abs(orientation(s.a, s.b, p)) >
      eps * std::max(1.0, s.length2())) {
    return false;
  }
  return p.x >= std::min(s.a.x, s.b.x) - eps &&
         p.x <= std::max(s.a.x, s.b.x) + eps &&
         p.y >= std::min(s.a.y, s.b.y) - eps &&
         p.y <= std::max(s.a.y, s.b.y) + eps;
}

namespace {

// Sign of `v` with a dead zone of +-eps treated as zero.
int sign_with_eps(double v, double eps) {
  if (v > eps) return 1;
  if (v < -eps) return -1;
  return 0;
}

}  // namespace

bool segments_intersect(const Segment& s1, const Segment& s2, double eps) {
  const double d1 = orientation(s2.a, s2.b, s1.a);
  const double d2 = orientation(s2.a, s2.b, s1.b);
  const double d3 = orientation(s1.a, s1.b, s2.a);
  const double d4 = orientation(s1.a, s1.b, s2.b);

  const int o1 = sign_with_eps(d1, eps);
  const int o2 = sign_with_eps(d2, eps);
  const int o3 = sign_with_eps(d3, eps);
  const int o4 = sign_with_eps(d4, eps);

  if (o1 != o2 && o3 != o4 && o1 * o2 <= 0 && o3 * o4 <= 0) return true;

  // Collinear cases: a zero orientation plus bounding-box overlap.
  if (o1 == 0 && on_segment(s2, s1.a)) return true;
  if (o2 == 0 && on_segment(s2, s1.b)) return true;
  if (o3 == 0 && on_segment(s1, s2.a)) return true;
  if (o4 == 0 && on_segment(s1, s2.b)) return true;
  return false;
}

std::optional<Vec2> segment_intersection(const Segment& s1,
                                         const Segment& s2, double eps) {
  const Vec2 r = s1.direction();
  const Vec2 s = s2.direction();
  const double denom = r.cross(s);
  if (std::abs(denom) <= eps) return std::nullopt;  // parallel/collinear

  const Vec2 qp = s2.a - s1.a;
  const double t = qp.cross(s) / denom;
  const double u = qp.cross(r) / denom;
  if (t < -eps || t > 1.0 + eps || u < -eps || u > 1.0 + eps) {
    return std::nullopt;
  }
  return s1.point_at(std::clamp(t, 0.0, 1.0));
}

Vec2 closest_point_on_segment(Vec2 p, const Segment& s) {
  const Vec2 d = s.direction();
  const double len2 = d.norm2();
  if (len2 == 0.0) return s.a;  // degenerate segment
  const double t = std::clamp((p - s.a).dot(d) / len2, 0.0, 1.0);
  return s.point_at(t);
}

double point_segment_distance(Vec2 p, const Segment& s) {
  return distance(p, closest_point_on_segment(p, s));
}

}  // namespace loctk::geom

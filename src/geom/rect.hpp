#pragma once

/// \file rect.hpp
/// Axis-aligned rectangle in world coordinates (feet). Used for the
/// experiment-house footprint (50 ft x 40 ft in the paper, §5.1) and
/// for clamping estimates to the mapped area.

#include <algorithm>

#include "geom/vec2.hpp"

namespace loctk::geom {

/// Axis-aligned rectangle [min.x, max.x] x [min.y, max.y].
/// Invariant: callers should keep min <= max component-wise; use
/// `normalized()` to repair a rectangle built from arbitrary corners.
struct Rect {
  Vec2 min;
  Vec2 max;

  constexpr Rect() = default;
  constexpr Rect(Vec2 min_, Vec2 max_) : min(min_), max(max_) {}

  /// Rectangle from origin to (w, h).
  static constexpr Rect sized(double w, double h) {
    return {{0.0, 0.0}, {w, h}};
  }

  friend constexpr bool operator==(const Rect&, const Rect&) = default;

  constexpr double width() const { return max.x - min.x; }
  constexpr double height() const { return max.y - min.y; }
  constexpr double area() const { return width() * height(); }
  constexpr Vec2 center() const { return midpoint(min, max); }

  /// True when `p` lies inside or on the boundary.
  constexpr bool contains(Vec2 p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }

  /// True when the two rectangles share any area or boundary.
  constexpr bool intersects(const Rect& o) const {
    return min.x <= o.max.x && max.x >= o.min.x &&
           min.y <= o.max.y && max.y >= o.min.y;
  }

  /// Nearest point inside the rectangle to `p`.
  constexpr Vec2 clamp(Vec2 p) const {
    return {std::clamp(p.x, min.x, max.x), std::clamp(p.y, min.y, max.y)};
  }

  /// Smallest rectangle containing both this and `p`.
  constexpr Rect expanded_to(Vec2 p) const {
    return {{std::min(min.x, p.x), std::min(min.y, p.y)},
            {std::max(max.x, p.x), std::max(max.y, p.y)}};
  }

  /// Rectangle grown by `m` on every side (shrunk when m < 0).
  constexpr Rect inflated(double m) const {
    return {{min.x - m, min.y - m}, {max.x + m, max.y + m}};
  }

  /// Rectangle with min/max swapped where needed so min <= max.
  constexpr Rect normalized() const {
    return {{std::min(min.x, max.x), std::min(min.y, max.y)},
            {std::max(min.x, max.x), std::max(min.y, max.y)}};
  }

  /// The four corners in counter-clockwise order starting at min.
  constexpr Vec2 corner(int i) const {
    switch (i & 3) {
      case 0: return min;
      case 1: return {max.x, min.y};
      case 2: return max;
      default: return {min.x, max.y};
    }
  }
};

}  // namespace loctk::geom

#include "geom/lateration.hpp"

#include <algorithm>
#include <cmath>

namespace loctk::geom {

std::optional<Vec2> lateration_least_squares(
    const std::vector<RangeMeasurement>& ranges) {
  const std::size_t n = ranges.size();
  if (n < 3) return std::nullopt;

  // Reference anchor: the last one. Each earlier anchor i yields
  //   2 (a_i - a_n) . p = |a_i|^2 - |a_n|^2 - d_i^2 + d_n^2
  const RangeMeasurement& ref = ranges.back();
  double ata00 = 0.0, ata01 = 0.0, ata11 = 0.0;
  double atb0 = 0.0, atb1 = 0.0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double ax = 2.0 * (ranges[i].anchor.x - ref.anchor.x);
    const double ay = 2.0 * (ranges[i].anchor.y - ref.anchor.y);
    const double b = ranges[i].anchor.norm2() - ref.anchor.norm2() -
                     ranges[i].distance * ranges[i].distance +
                     ref.distance * ref.distance;
    ata00 += ax * ax;
    ata01 += ax * ay;
    ata11 += ay * ay;
    atb0 += ax * b;
    atb1 += ay * b;
  }
  const double det = ata00 * ata11 - ata01 * ata01;
  const double scale = std::max({std::abs(ata00), std::abs(ata11), 1.0});
  if (std::abs(det) < 1e-12 * scale * scale) return std::nullopt;
  return Vec2{(atb0 * ata11 - atb1 * ata01) / det,
              (atb1 * ata00 - atb0 * ata01) / det};
}

double range_rms_residual(const std::vector<RangeMeasurement>& ranges,
                          Vec2 p) {
  if (ranges.empty()) return 0.0;
  double ss = 0.0;
  for (const auto& r : ranges) {
    const double e = distance(p, r.anchor) - r.distance;
    ss += e * e;
  }
  return std::sqrt(ss / static_cast<double>(ranges.size()));
}

Vec2 lateration_gauss_newton(const std::vector<RangeMeasurement>& ranges,
                             Vec2 initial, int max_iters, double tol) {
  Vec2 p = initial;
  Vec2 best = p;
  double best_cost = range_rms_residual(ranges, p);

  for (int it = 0; it < max_iters; ++it) {
    // Normal equations J^T J dp = -J^T r with J_i = (p - a_i)/||p - a_i||.
    double h00 = 0.0, h01 = 0.0, h11 = 0.0, g0 = 0.0, g1 = 0.0;
    for (const auto& r : ranges) {
      const Vec2 diff = p - r.anchor;
      const double d = diff.norm();
      if (d < 1e-12) continue;  // at an anchor: gradient undefined
      const double res = d - r.distance;
      const Vec2 j = diff / d;
      h00 += j.x * j.x;
      h01 += j.x * j.y;
      h11 += j.y * j.y;
      g0 += j.x * res;
      g1 += j.y * res;
    }
    const double det = h00 * h11 - h01 * h01;
    if (std::abs(det) < 1e-15) break;
    const Vec2 dp{-(g0 * h11 - g1 * h01) / det,
                  -(g1 * h00 - g0 * h01) / det};
    p += dp;
    const double cost = range_rms_residual(ranges, p);
    if (cost < best_cost) {
      best_cost = cost;
      best = p;
    }
    if (dp.norm() < tol) break;
  }
  return best;
}

std::vector<Circle> to_circles(const std::vector<RangeMeasurement>& ranges) {
  std::vector<Circle> out;
  out.reserve(ranges.size());
  for (const auto& r : ranges) out.push_back({r.anchor, r.distance});
  return out;
}

}  // namespace loctk::geom

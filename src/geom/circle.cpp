#include "geom/circle.hpp"

#include <algorithm>
#include <cmath>

namespace loctk::geom {

CircleIntersection intersect_circles(const Circle& a, const Circle& b,
                                     double eps) {
  CircleIntersection out;
  const Vec2 d = b.center - a.center;
  const double dist = d.norm();
  if (dist <= eps) {
    // Concentric (or identical) circles: no unique intersection.
    out.count = 0;
    out.p1 = midpoint(a.center, b.center);
    out.p2 = out.p1;
    return out;
  }

  const double r1 = std::max(a.radius, 0.0);
  const double r2 = std::max(b.radius, 0.0);

  // Distance from a.center to the radical line along the center line.
  const double x = (dist * dist + r1 * r1 - r2 * r2) / (2.0 * dist);
  const double h2 = r1 * r1 - x * x;

  const Vec2 u = d / dist;
  if (h2 < -eps * std::max(1.0, r1 * r1)) {
    // Disjoint or nested: best-effort point between the rings.
    out.count = 0;
    out.p1 = circle_pair_point(a, b);
    out.p2 = out.p1;
    return out;
  }

  const Vec2 foot = a.center + u * x;
  if (h2 <= eps * std::max(1.0, r1 * r1)) {
    out.count = 1;
    out.p1 = foot;
    out.p2 = foot;
    return out;
  }

  const double h = std::sqrt(h2);
  const Vec2 n = u.perp();
  out.count = 2;
  out.p1 = foot + n * h;
  out.p2 = foot - n * h;
  return out;
}

Vec2 circle_pair_point(const Circle& a, const Circle& b) {
  const Vec2 d = b.center - a.center;
  const double dist = d.norm();
  if (dist == 0.0) return a.center;
  const Vec2 u = d / dist;

  const double r1 = std::max(a.radius, 0.0);
  const double r2 = std::max(b.radius, 0.0);

  if (dist > r1 + r2) {
    // Disjoint: split the gap between the two rings evenly.
    const double t = r1 + (dist - r1 - r2) * 0.5;
    return a.center + u * t;
  }
  if (dist < std::abs(r1 - r2)) {
    // Nested: point between the rings on the far side of the inner one.
    if (r1 > r2) {
      const double t = dist + r2 + (r1 - r2 - dist) * 0.5;
      return a.center + u * t;
    }
    const double t = -(r1 + (r2 - r1 - dist) * 0.5 - dist);
    // Equivalent construction from b towards a, mirrored onto the
    // center line; derive directly instead for clarity:
    (void)t;
    const double from_b = r1 + (r2 - r1 - dist) * 0.5;
    return b.center - u * from_b;
  }

  // Overlapping: midpoint of the two true intersection points, which
  // lies on the center line at the radical-line foot.
  const double x = (dist * dist + r1 * r1 - r2 * r2) / (2.0 * dist);
  return a.center + u * x;
}

std::pair<Vec2, Vec2> circle_pair_points(const Circle& a, const Circle& b) {
  const CircleIntersection ix = intersect_circles(a, b);
  if (ix.count == 2) return {ix.p1, ix.p2};
  return {ix.p1, ix.p1};
}

}  // namespace loctk::geom

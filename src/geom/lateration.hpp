#pragma once

/// \file lateration.hpp
/// Multilateration: position from distances to known anchors.
///
/// The paper (§2.4, §5.2) determines position from >= 3 circles.
/// Besides the paper's pairwise-intersection-median estimator (built
/// in `loctk/core` from `circle.hpp` primitives), this header provides
/// the classic linearized least-squares solver and an iterative
/// Gauss-Newton refinement, used as baselines in the ablation benches.

#include <optional>
#include <vector>

#include "geom/circle.hpp"
#include "geom/vec2.hpp"

namespace loctk::geom {

/// One anchor (access point position) plus the measured distance.
struct RangeMeasurement {
  Vec2 anchor;
  double distance = 0.0;
};

/// Linearized least-squares multilateration.
///
/// Subtracting the circle equation of the last anchor from the others
/// yields a linear system `A p = b` solved via 2x2 normal equations.
/// Requires >= 3 anchors, not all collinear; returns nullopt when the
/// normal matrix is singular (collinear anchors).
std::optional<Vec2> lateration_least_squares(
    const std::vector<RangeMeasurement>& ranges);

/// Gauss-Newton refinement of the nonlinear range residuals
/// `||p - a_i|| - d_i`, starting from `initial` (typically the linear
/// solution). Always returns the best iterate found.
Vec2 lateration_gauss_newton(const std::vector<RangeMeasurement>& ranges,
                             Vec2 initial, int max_iters = 32,
                             double tol = 1e-9);

/// Root-mean-square range residual of a candidate position — the
/// objective minimized by `lateration_gauss_newton`.
double range_rms_residual(const std::vector<RangeMeasurement>& ranges,
                          Vec2 p);

/// Convenience: build circles from range measurements.
std::vector<Circle> to_circles(const std::vector<RangeMeasurement>& ranges);

}  // namespace loctk::geom

#include "geom/polygon.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "geom/segment.hpp"

namespace loctk::geom {

double Polygon::signed_area() const {
  if (vertices_.size() < 3) return 0.0;
  double twice = 0.0;
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const Vec2 a = vertices_[i];
    const Vec2 b = vertices_[(i + 1) % vertices_.size()];
    twice += a.cross(b);
  }
  return twice * 0.5;
}

double Polygon::area() const { return std::abs(signed_area()); }

Vec2 Polygon::centroid() const {
  if (vertices_.empty()) return {};
  const double a = signed_area();
  if (std::abs(a) < 1e-12) {
    return mean_point(vertices_);
  }
  double cx = 0.0, cy = 0.0;
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const Vec2 p = vertices_[i];
    const Vec2 q = vertices_[(i + 1) % vertices_.size()];
    const double w = p.cross(q);
    cx += (p.x + q.x) * w;
    cy += (p.y + q.y) * w;
  }
  return {cx / (6.0 * a), cy / (6.0 * a)};
}

bool Polygon::contains(Vec2 p, double eps) const {
  if (vertices_.size() < 3) return false;
  // Boundary counts as inside.
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const Segment edge{vertices_[i], vertices_[(i + 1) % vertices_.size()]};
    if (on_segment(edge, p, eps)) return true;
  }
  // Even-odd ray cast towards +x.
  bool inside = false;
  for (std::size_t i = 0, j = vertices_.size() - 1; i < vertices_.size();
       j = i++) {
    const Vec2 a = vertices_[i];
    const Vec2 b = vertices_[j];
    const bool crosses = (a.y > p.y) != (b.y > p.y);
    if (crosses) {
      const double xint = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y);
      if (p.x < xint) inside = !inside;
    }
  }
  return inside;
}

Rect Polygon::bounding_box() const {
  if (vertices_.empty()) return {};
  Rect box{vertices_.front(), vertices_.front()};
  for (const Vec2 v : vertices_) box = box.expanded_to(v);
  return box;
}

double Polygon::perimeter() const {
  if (vertices_.size() < 2) return 0.0;
  double len = 0.0;
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    len += distance(vertices_[i], vertices_[(i + 1) % vertices_.size()]);
  }
  return len;
}

Polygon convex_hull(std::vector<Vec2> pts) {
  std::sort(pts.begin(), pts.end(), [](Vec2 a, Vec2 b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  const std::size_t n = pts.size();
  if (n < 3) return Polygon{std::move(pts)};

  std::vector<Vec2> hull(2 * n);
  std::size_t k = 0;
  for (std::size_t i = 0; i < n; ++i) {  // lower hull
    while (k >= 2 &&
           orientation(hull[k - 2], hull[k - 1], pts[i]) <= 0.0) {
      --k;
    }
    hull[k++] = pts[i];
  }
  for (std::size_t i = n - 1, t = k + 1; i-- > 0;) {  // upper hull
    while (k >= t &&
           orientation(hull[k - 2], hull[k - 1], pts[i]) <= 0.0) {
      --k;
    }
    hull[k++] = pts[i];
  }
  hull.resize(k - 1);  // last point repeats the first
  return Polygon{std::move(hull)};
}

Vec2 component_median(std::vector<Vec2> points) {
  assert(!points.empty());
  const std::size_t n = points.size();
  const std::size_t mid = n / 2;

  auto nth_coord = [&](auto proj) {
    std::nth_element(points.begin(),
                     points.begin() + static_cast<std::ptrdiff_t>(mid),
                     points.end(), [&](Vec2 a, Vec2 b) {
                       return proj(a) < proj(b);
                     });
    double hi = proj(points[mid]);
    if (n % 2 == 0) {
      const auto lo_it = std::max_element(
          points.begin(), points.begin() + static_cast<std::ptrdiff_t>(mid),
          [&](Vec2 a, Vec2 b) { return proj(a) < proj(b); });
      return (hi + proj(*lo_it)) * 0.5;
    }
    return hi;
  };

  const double mx = nth_coord([](Vec2 v) { return v.x; });
  const double my = nth_coord([](Vec2 v) { return v.y; });
  return {mx, my};
}

Vec2 mean_point(const std::vector<Vec2>& points) {
  assert(!points.empty());
  Vec2 sum;
  for (const Vec2 p : points) sum += p;
  return sum / static_cast<double>(points.size());
}

Vec2 geometric_median(const std::vector<Vec2>& points, int max_iters,
                      double tol) {
  assert(!points.empty());
  if (points.size() == 1) return points.front();
  Vec2 x = mean_point(points);
  for (int it = 0; it < max_iters; ++it) {
    Vec2 num;
    double den = 0.0;
    bool at_sample = false;
    for (const Vec2 p : points) {
      const double d = distance(x, p);
      if (d < tol) {
        at_sample = true;
        break;
      }
      num += p / d;
      den += 1.0 / d;
    }
    if (at_sample || den == 0.0) break;
    const Vec2 next = num / den;
    if (distance(next, x) < tol) return next;
    x = next;
  }
  return x;
}

}  // namespace loctk::geom

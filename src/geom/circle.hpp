#pragma once

/// \file circle.hpp
/// Circles and circle-circle intersection.
///
/// This is the geometric heart of the paper's §5.2 approach: each
/// access point O_i with an estimated distance d_i defines the circle
/// (O_i, d_i); the client lies near the intersections of those
/// circles. Real RSSI-derived radii rarely intersect exactly, so the
/// API also exposes the "best effort" intersection used by RADAR-style
/// systems: when two circles are disjoint or nested, return the point
/// on the line of centers that minimizes the sum of squared radial
/// errors.

#include <optional>
#include <utility>

#include "geom/vec2.hpp"

namespace loctk::geom {

/// A circle given by center and radius. Radius must be >= 0.
struct Circle {
  Vec2 center;
  double radius = 0.0;

  constexpr Circle() = default;
  constexpr Circle(Vec2 c, double r) : center(c), radius(r) {}

  friend constexpr bool operator==(const Circle&, const Circle&) = default;

  bool contains(Vec2 p) const {
    return distance2(p, center) <= radius * radius;
  }
};

/// Result of intersecting two circles.
struct CircleIntersection {
  /// Number of true intersection points: 0, 1, or 2. When 0, `p1`
  /// still holds the best-effort point (see `closest_approach`).
  int count = 0;
  Vec2 p1;  ///< First intersection (or best-effort point when count==0).
  Vec2 p2;  ///< Second intersection (valid only when count == 2).
};

/// Exact circle-circle intersection. Degenerate inputs (concentric
/// circles, zero radii) yield count == 0 with `p1` at the midpoint of
/// the centers.
CircleIntersection intersect_circles(const Circle& a, const Circle& b,
                                     double eps = 1e-9);

/// Best-effort single point for a circle pair, as used by the paper's
/// geometric locator: a true intersection midpoint when the circles
/// cross, otherwise the point between the rings on the line of
/// centers. Always returns a finite point for distinct centers.
Vec2 circle_pair_point(const Circle& a, const Circle& b);

/// Both candidate points for a circle pair. When the circles truly
/// intersect these are the two intersection points; otherwise both
/// equal the best-effort point.
std::pair<Vec2, Vec2> circle_pair_points(const Circle& a, const Circle& b);

}  // namespace loctk::geom

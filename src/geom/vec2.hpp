#pragma once

/// \file vec2.hpp
/// 2-D vector / point type used throughout the toolkit.
///
/// The paper's coordinate convention (§4.1) is a two-dimensional world
/// frame measured in feet, with a user-chosen origin; we keep every
/// world-space quantity in `double` feet and convert to pixels only at
/// the floor-plan boundary (see `loctk/floorplan`).

#include <cmath>
#include <compare>
#include <iosfwd>
#include <limits>

namespace loctk::geom {

/// A 2-D point or displacement. Plain value type: cheap to copy,
/// trivially relocatable, no invariants.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  friend constexpr bool operator==(const Vec2&, const Vec2&) = default;

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2 operator-() const { return {-x, -y}; }

  constexpr Vec2& operator+=(Vec2 o) { x += o.x; y += o.y; return *this; }
  constexpr Vec2& operator-=(Vec2 o) { x -= o.x; y -= o.y; return *this; }
  constexpr Vec2& operator*=(double s) { x *= s; y *= s; return *this; }
  constexpr Vec2& operator/=(double s) { x /= s; y /= s; return *this; }

  /// Dot product.
  constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }

  /// Z-component of the 3-D cross product; >0 when `o` is counter-
  /// clockwise of `*this`.
  constexpr double cross(Vec2 o) const { return x * o.y - y * o.x; }

  constexpr double norm2() const { return x * x + y * y; }
  double norm() const { return std::hypot(x, y); }

  /// Unit vector in the same direction; returns {0,0} for the zero
  /// vector rather than dividing by zero.
  Vec2 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }

  /// Perpendicular (rotated +90 degrees).
  constexpr Vec2 perp() const { return {-y, x}; }
};

constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }

/// Euclidean distance between two points.
inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

/// Squared Euclidean distance (avoids the sqrt for comparisons).
constexpr double distance2(Vec2 a, Vec2 b) { return (a - b).norm2(); }

/// Linear interpolation: `t = 0` gives `a`, `t = 1` gives `b`.
constexpr Vec2 lerp(Vec2 a, Vec2 b, double t) {
  return {a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
}

/// Midpoint of the segment (a, b).
constexpr Vec2 midpoint(Vec2 a, Vec2 b) {
  return {(a.x + b.x) * 0.5, (a.y + b.y) * 0.5};
}

/// True when the two points are within `eps` of each other in both
/// coordinates (component-wise, not Euclidean).
inline bool almost_equal(Vec2 a, Vec2 b,
                         double eps = 1e-9) {
  return std::abs(a.x - b.x) <= eps && std::abs(a.y - b.y) <= eps;
}

/// True when every component is finite.
inline bool is_finite(Vec2 v) {
  return std::isfinite(v.x) && std::isfinite(v.y);
}

std::ostream& operator<<(std::ostream& os, Vec2 v);

}  // namespace loctk::geom

#pragma once

/// \file processor.hpp
/// The Floor Plan Processor: the paper's §4.1 component, headless.
///
/// The paper's version is a Tk GUI whose six functions are (1) load a
/// floor-plan image, (2) add access points by clicking, (3) set the
/// scale from two clicks plus a real distance, (4) set the origin by
/// clicking, (5) add location names by clicking, (6) save. Every one
/// of those is a state mutation on `FloorPlan`; this class performs
/// them from code or from a CLI (see `examples/floorplan_tool`), and
/// adds save/load of the annotations as a text sidecar next to the
/// image so a "saved floor plan" round-trips losslessly.
///
/// Sidecar format (`*.fpa`):
///
///     # floorplan-annotations v1
///     image=house.ppm
///     feet_per_pixel=0.125
///     origin_px=40 360
///     ap "A" 56 344
///     place "kitchen" 300 120

#include <filesystem>

#include "floorplan/floor_plan.hpp"
#include "radio/environment.hpp"

namespace loctk::floorplan {

/// Headless driver for the six Floor Plan Processor operations.
class FloorPlanProcessor {
 public:
  FloorPlanProcessor() = default;
  explicit FloorPlanProcessor(FloorPlan plan) : plan_(std::move(plan)) {}

  FloorPlan& plan() { return plan_; }
  const FloorPlan& plan() const { return plan_; }

  /// (1) Load the floor-plan image (PPM/PGM/BMP — GIF substitution is
  /// documented in DESIGN.md).
  void load_image(const std::filesystem::path& path);

  /// (2) Add an access point at a clicked pixel.
  void add_access_point(const std::string& name, PixelPoint click);

  /// (3) Set the scale: two clicked pixels plus the real distance.
  void set_scale(PixelPoint click1, PixelPoint click2,
                 double real_distance_ft);

  /// (4) Set the point of origin.
  void set_origin(PixelPoint click);

  /// (5) Attach a location name to a clicked pixel.
  void add_location_name(const std::string& name, PixelPoint click);

  /// (6) Save: writes the image (by extension) and the `.fpa`
  /// annotation sidecar derived from the image path.
  void save(const std::filesystem::path& image_path) const;

  /// Loads a plan saved by `save()`: reads the sidecar, then the image
  /// it references (relative to the sidecar's directory).
  static FloorPlanProcessor load(const std::filesystem::path& fpa_path);

 private:
  FloorPlan plan_;
};

/// Path of the annotation sidecar for an image path:
/// "house.ppm" -> "house.fpa".
std::filesystem::path annotation_path_for(
    const std::filesystem::path& image_path);

/// Renders a radio::Environment into a calibrated FloorPlan: walls as
/// dark lines, footprint outline, APs placed and named, origin at the
/// footprint's min corner. `pixels_per_foot` controls resolution.
/// This is how the repo produces the "scanned blueprint" every example
/// starts from.
FloorPlan render_environment(const radio::Environment& env,
                             double pixels_per_foot = 8.0,
                             int margin_px = 24);

}  // namespace loctk::floorplan

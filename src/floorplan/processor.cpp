#include "floorplan/processor.hpp"

#include <fstream>
#include <sstream>

#include "image/codec_bmp.hpp"
#include "image/draw.hpp"
#include "image/font.hpp"

namespace loctk::floorplan {

namespace {

void require(bool ok, const std::string& what) {
  if (!ok) throw FloorPlanError(what);
}

void write_quoted(std::ostream& os, const std::string& name) {
  os << '"';
  for (const char c : name) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

std::string read_quoted(std::istringstream& is, const std::string& what) {
  is >> std::ws;
  require(is.get() == '"', what + ": expected quoted name");
  std::string name;
  for (;;) {
    const int c = is.get();
    require(c != EOF, what + ": unterminated quoted name");
    if (c == '\\') {
      const int next = is.get();
      require(next != EOF, what + ": dangling escape");
      name.push_back(static_cast<char>(next));
    } else if (c == '"') {
      return name;
    } else {
      name.push_back(static_cast<char>(c));
    }
  }
}

}  // namespace

void FloorPlanProcessor::load_image(const std::filesystem::path& path) {
  plan_.set_raster(image::read_image(path));
}

void FloorPlanProcessor::add_access_point(const std::string& name,
                                          PixelPoint click) {
  plan_.add_access_point(name, click);
}

void FloorPlanProcessor::set_scale(PixelPoint click1, PixelPoint click2,
                                   double real_distance_ft) {
  plan_.set_scale_from_points(click1, click2, real_distance_ft);
}

void FloorPlanProcessor::set_origin(PixelPoint click) {
  plan_.set_origin(click);
}

void FloorPlanProcessor::add_location_name(const std::string& name,
                                           PixelPoint click) {
  plan_.add_place(name, click);
}

std::filesystem::path annotation_path_for(
    const std::filesystem::path& image_path) {
  std::filesystem::path p = image_path;
  p.replace_extension(".fpa");
  return p;
}

void FloorPlanProcessor::save(const std::filesystem::path& image_path) const {
  image::write_image(image_path, plan_.raster());

  const std::filesystem::path sidecar = annotation_path_for(image_path);
  std::ofstream os(sidecar);
  require(os.good(), "save: cannot open " + sidecar.string());

  os << "# floorplan-annotations v1\n";
  os << "image=" << image_path.filename().string() << '\n';
  if (plan_.feet_per_pixel()) {
    os << "feet_per_pixel=" << *plan_.feet_per_pixel() << '\n';
  }
  if (plan_.origin_pixel()) {
    os << "origin_px=" << plan_.origin_pixel()->x << ' '
       << plan_.origin_pixel()->y << '\n';
  }
  for (const PlacedAccessPoint& ap : plan_.access_points()) {
    os << "ap ";
    write_quoted(os, ap.name);
    os << ' ' << ap.pixel.x << ' ' << ap.pixel.y << '\n';
  }
  for (const NamedPlace& pl : plan_.places()) {
    os << "place ";
    write_quoted(os, pl.name);
    os << ' ' << pl.pixel.x << ' ' << pl.pixel.y << '\n';
  }
  require(os.good(), "save: write failed for " + sidecar.string());
}

FloorPlanProcessor FloorPlanProcessor::load(
    const std::filesystem::path& fpa_path) {
  std::ifstream is(fpa_path);
  require(is.good(), "load: cannot open " + fpa_path.string());

  FloorPlanProcessor proc;
  std::string line;
  std::filesystem::path image_file;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const auto start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;

    if (line.rfind("image=", start) == start) {
      image_file = line.substr(start + 6);
    } else if (line.rfind("feet_per_pixel=", start) == start) {
      proc.plan_.set_feet_per_pixel(std::stod(line.substr(start + 15)));
    } else if (line.rfind("origin_px=", start) == start) {
      std::istringstream vals(line.substr(start + 10));
      PixelPoint p;
      vals >> p.x >> p.y;
      require(static_cast<bool>(vals), "load: bad origin_px line");
      proc.plan_.set_origin(p);
    } else if (line.rfind("ap ", start) == start) {
      std::istringstream rest(line.substr(start + 3));
      const std::string name = read_quoted(rest, "load: ap");
      PixelPoint p;
      rest >> p.x >> p.y;
      require(static_cast<bool>(rest), "load: bad ap line");
      proc.plan_.add_access_point(name, p);
    } else if (line.rfind("place ", start) == start) {
      std::istringstream rest(line.substr(start + 6));
      const std::string name = read_quoted(rest, "load: place");
      PixelPoint p;
      rest >> p.x >> p.y;
      require(static_cast<bool>(rest), "load: bad place line");
      proc.plan_.add_place(name, p);
    } else {
      throw FloorPlanError("load: unrecognized line: " + line);
    }
  }
  require(!image_file.empty(), "load: sidecar missing image= line");
  proc.load_image(fpa_path.parent_path() / image_file);
  return proc;
}

FloorPlan render_environment(const radio::Environment& env,
                             double pixels_per_foot, int margin_px) {
  const geom::Rect fp = env.footprint();
  const int w =
      static_cast<int>(fp.width() * pixels_per_foot) + 2 * margin_px;
  const int h =
      static_cast<int>(fp.height() * pixels_per_foot) + 2 * margin_px;

  FloorPlan plan{image::Raster(w, h, image::colors::kWhite)};
  plan.set_feet_per_pixel(1.0 / pixels_per_foot);
  // Origin pixel: world (min.x, min.y) maps to the bottom-left of the
  // drawing area (raster y is flipped).
  plan.set_origin({static_cast<double>(margin_px) -
                       fp.min.x * pixels_per_foot,
                   static_cast<double>(h - margin_px) +
                       fp.min.y * pixels_per_foot});

  image::Raster& img = plan.raster();
  auto px = [&](geom::Vec2 world) { return plan.to_pixel(world); };

  // Footprint outline.
  for (int i = 0; i < 4; ++i) {
    const PixelPoint a = px(fp.corner(i));
    const PixelPoint b = px(fp.corner((i + 1) % 4));
    image::draw_thick_line(img, static_cast<int>(a.x), static_cast<int>(a.y),
                           static_cast<int>(b.x), static_cast<int>(b.y),
                           image::colors::kBlack, 3);
  }
  // Walls.
  for (const radio::Wall& wall : env.walls()) {
    const PixelPoint a = px(wall.segment.a);
    const PixelPoint b = px(wall.segment.b);
    image::draw_thick_line(img, static_cast<int>(a.x), static_cast<int>(a.y),
                           static_cast<int>(b.x), static_cast<int>(b.y),
                           image::colors::kDarkGray, 2);
  }
  // Access points with labels.
  for (const radio::AccessPoint& ap : env.access_points()) {
    const PixelPoint p = px(ap.position);
    plan.add_access_point(ap.name, p);
    image::draw_marker(img, static_cast<int>(p.x), static_cast<int>(p.y),
                       image::MarkerShape::kTriangle, image::colors::kBlue,
                       5);
    image::draw_text(img, static_cast<int>(p.x) + 7,
                     static_cast<int>(p.y) - 3, ap.name,
                     image::colors::kBlue);
  }
  return plan;
}

}  // namespace loctk::floorplan

#include "floorplan/compositor.hpp"

#include <cmath>

#include "image/font.hpp"

namespace loctk::floorplan {

namespace {

struct PxInt {
  int x;
  int y;
};

PxInt to_px_int(const FloorPlan& plan, geom::Vec2 w) {
  const PixelPoint p = plan.to_pixel(w);
  return {static_cast<int>(std::lround(p.x)),
          static_cast<int>(std::lround(p.y))};
}

}  // namespace

image::Raster Compositor::render(const std::vector<Mark>& marks) const {
  if (!plan_->calibrated()) {
    throw FloorPlanError("Compositor::render: floor plan not calibrated");
  }
  image::Raster img = plan_->raster();

  // World grid.
  if (options_.grid_spacing_ft > 0.0) {
    const geom::Rect wb = plan_->world_bounds();
    for (double x = std::ceil(wb.min.x / options_.grid_spacing_ft) *
                    options_.grid_spacing_ft;
         x <= wb.max.x; x += options_.grid_spacing_ft) {
      const PxInt a = to_px_int(*plan_, {x, wb.min.y});
      const PxInt b = to_px_int(*plan_, {x, wb.max.y});
      image::draw_dashed_line(img, a.x, a.y, b.x, b.y,
                              image::colors::kLightGray, 1, 5);
    }
    for (double y = std::ceil(wb.min.y / options_.grid_spacing_ft) *
                    options_.grid_spacing_ft;
         y <= wb.max.y; y += options_.grid_spacing_ft) {
      const PxInt a = to_px_int(*plan_, {wb.min.x, y});
      const PxInt b = to_px_int(*plan_, {wb.max.x, y});
      image::draw_dashed_line(img, a.x, a.y, b.x, b.y,
                              image::colors::kLightGray, 1, 5);
    }
  }

  for (const Mark& m : marks) {
    const PxInt p = to_px_int(*plan_, m.world);
    image::draw_marker(img, p.x, p.y, m.shape, m.color,
                       options_.marker_radius);
    if (options_.draw_labels && !m.label.empty()) {
      image::draw_text(img, p.x + options_.marker_radius + 3,
                       p.y - options_.marker_radius - 2, m.label, m.color);
    }
  }

  if (!options_.title.empty()) {
    image::draw_text(img, 6, img.height() - image::kGlyphHeight - 4,
                     options_.title, image::colors::kBlack);
  }
  return img;
}

void Compositor::draw_world_line(image::Raster& img, geom::Vec2 a,
                                 geom::Vec2 b, image::Color color,
                                 bool dashed) const {
  const PxInt pa = to_px_int(*plan_, a);
  const PxInt pb = to_px_int(*plan_, b);
  if (dashed) {
    image::draw_dashed_line(img, pa.x, pa.y, pb.x, pb.y, color);
  } else {
    image::draw_line(img, pa.x, pa.y, pb.x, pb.y, color);
  }
}

image::Raster composite_evaluation(const FloorPlan& plan,
                                   const std::vector<EvaluatedPoint>& points,
                                   CompositorOptions options) {
  std::vector<Mark> marks;
  marks.reserve(points.size() * 2);
  for (const EvaluatedPoint& ep : points) {
    marks.push_back(
        {ep.truth, image::MarkerShape::kCross, image::colors::kGreen,
         options.draw_labels ? ep.label : std::string{}});
    marks.push_back(
        {ep.estimate, image::MarkerShape::kX, image::colors::kRed, {}});
  }

  Compositor comp(plan, options);
  image::Raster img = comp.render(marks);
  for (const EvaluatedPoint& ep : points) {
    comp.draw_world_line(img, ep.truth, ep.estimate, image::colors::kGray,
                         /*dashed=*/true);
  }

  if (options.draw_legend) {
    // Small legend box: green cross = truth, red X = estimate.
    image::fill_rect(img, 4, 4, 120, 28, image::colors::kWhite);
    image::draw_rect(img, 4, 4, 120, 28, image::colors::kBlack);
    image::draw_marker(img, 14, 12, image::MarkerShape::kCross,
                       image::colors::kGreen, 4);
    image::draw_text(img, 24, 9, "actual", image::colors::kBlack);
    image::draw_marker(img, 14, 24, image::MarkerShape::kX,
                       image::colors::kRed, 4);
    image::draw_text(img, 24, 21, "estimate", image::colors::kBlack);
  }
  return img;
}

}  // namespace loctk::floorplan

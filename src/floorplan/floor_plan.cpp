#include "floorplan/floor_plan.hpp"

#include <cmath>
#include <limits>

namespace loctk::floorplan {

void FloorPlan::set_scale_from_points(PixelPoint p1, PixelPoint p2,
                                      double real_distance_ft) {
  const double px_dist = std::hypot(p2.x - p1.x, p2.y - p1.y);
  if (px_dist <= 0.0) {
    throw FloorPlanError("set_scale_from_points: points coincide");
  }
  if (real_distance_ft <= 0.0) {
    throw FloorPlanError("set_scale_from_points: distance must be > 0");
  }
  feet_per_pixel_ = real_distance_ft / px_dist;
}

void FloorPlan::set_feet_per_pixel(double fpp) {
  if (fpp <= 0.0) {
    throw FloorPlanError("set_feet_per_pixel: must be > 0");
  }
  feet_per_pixel_ = fpp;
}

geom::Vec2 FloorPlan::to_world(PixelPoint p) const {
  if (!calibrated()) {
    throw FloorPlanError("to_world: floor plan not calibrated");
  }
  const double fpp = *feet_per_pixel_;
  // Raster y grows downward; world y grows upward.
  return {(p.x - origin_->x) * fpp, (origin_->y - p.y) * fpp};
}

PixelPoint FloorPlan::to_pixel(geom::Vec2 w) const {
  if (!calibrated()) {
    throw FloorPlanError("to_pixel: floor plan not calibrated");
  }
  const double fpp = *feet_per_pixel_;
  return {origin_->x + w.x / fpp, origin_->y - w.y / fpp};
}

geom::Rect FloorPlan::world_bounds() const {
  if (raster_.empty()) return {};
  const geom::Vec2 top_left = to_world({0.0, 0.0});
  const geom::Vec2 bottom_right = to_world(
      {static_cast<double>(raster_.width()),
       static_cast<double>(raster_.height())});
  return geom::Rect{top_left, bottom_right}.normalized();
}

void FloorPlan::add_access_point(std::string name, PixelPoint p) {
  aps_.push_back({std::move(name), p});
}

std::optional<geom::Vec2> FloorPlan::access_point_world(
    const std::string& name) const {
  for (const PlacedAccessPoint& ap : aps_) {
    if (ap.name == name) return to_world(ap.pixel);
  }
  return std::nullopt;
}

void FloorPlan::add_place(std::string name, PixelPoint p) {
  places_.push_back({std::move(name), p});
}

std::optional<geom::Vec2> FloorPlan::place_world(
    const std::string& name) const {
  for (const NamedPlace& pl : places_) {
    if (pl.name == name) return to_world(pl.pixel);
  }
  return std::nullopt;
}

std::optional<std::string> FloorPlan::nearest_place(geom::Vec2 w) const {
  if (places_.empty()) return std::nullopt;
  const NamedPlace* best = nullptr;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (const NamedPlace& pl : places_) {
    const double d2 = geom::distance2(to_world(pl.pixel), w);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = &pl;
    }
  }
  return best->name;
}

}  // namespace loctk::floorplan

#include "floorplan/fleet_compositor.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <map>
#include <utility>

#include "base/metrics.hpp"
#include "concurrency/parallel_for.hpp"
#include "image/font.hpp"
#include "image/glyph_atlas.hpp"

namespace loctk::floorplan {

namespace {

using image::Color;
using image::GlyphAtlas;
using image::Raster;

/// Half-open pixel rectangle.
struct Box {
  int x0 = 0, y0 = 0, x1 = 0, y1 = 0;

  bool empty() const { return x0 >= x1 || y0 >= y1; }
};

/// Conservative bounding box of the pixels an op can write. Every
/// legacy primitive's ink is contained in the box it returns here
/// (the determinism test against `render_serial` would catch any
/// escape).
Box op_bbox(const FrameOp& op) {
  switch (op.kind) {
    case FrameOp::Kind::kFillRect:
    case FrameOp::Kind::kRect:
      return {op.x, op.y, op.x + std::max(0, op.w), op.y + std::max(0, op.h)};
    case FrameOp::Kind::kLine:
      return {std::min(op.x, op.x2), std::min(op.y, op.y2),
              std::max(op.x, op.x2) + 1, std::max(op.y, op.y2) + 1};
    case FrameOp::Kind::kMarker: {
      const int r = std::max(1, op.radius);
      return {op.x - r, op.y - r, op.x + r + 1, op.y + r + 1};
    }
    case FrameOp::Kind::kText: {
      const int scale = std::max(1, op.scale);
      return {op.x, op.y, op.x + image::text_width(op.text, scale),
              op.y + image::text_height(op.text, scale)};
    }
  }
  return {};
}

/// A clipped window onto the shared output raster. Each tile owns a
/// disjoint window, so concurrent tile renders never write the same
/// pixel.
struct TileView {
  Color* data;  ///< output raster pixel 0
  int stride;   ///< output raster width
  Box clip;     ///< pixels this tile owns (half-open)

  Color* row(int y) const {
    return data + static_cast<std::size_t>(y) *
                      static_cast<std::size_t>(stride);
  }
  void set(int x, int y, Color c) const {
    if (x >= clip.x0 && x < clip.x1 && y >= clip.y0 && y < clip.y1) {
      row(y)[x] = c;
    }
  }
};

/// Solid rect via row spans: same pixels as the legacy `fill_rect`
/// restricted to the tile, without the per-pixel checked `at()`.
/// The first row is filled pixel-wise, the rest are memcpy'd from it
/// (a 3-byte Color defeats std::fill vectorization; memcpy doesn't
/// care).
void tile_fill_rect(const TileView& t, const FrameOp& op) {
  const int x0 = std::max(op.x, t.clip.x0);
  const int y0 = std::max(op.y, t.clip.y0);
  const int x1 = std::min(op.x + op.w, t.clip.x1);
  const int y1 = std::min(op.y + op.h, t.clip.y1);
  if (x0 >= x1 || y0 >= y1) return;
  Color* first = t.row(y0) + x0;
  std::fill(first, first + (x1 - x0), op.color);
  const std::size_t bytes =
      static_cast<std::size_t>(x1 - x0) * sizeof(Color);
  for (int y = y0 + 1; y < y1; ++y) {
    std::memcpy(t.row(y) + x0, first, bytes);
  }
}

/// Rect outline as two row spans and two column walks — pixel-equal
/// to `draw_rect`'s four inclusive-endpoint lines.
void tile_rect_outline(const TileView& t, const FrameOp& op) {
  if (op.w <= 0 || op.h <= 0) return;
  const int left = op.x;
  const int right = op.x + op.w - 1;
  const int top = op.y;
  const int bottom = op.y + op.h - 1;
  const int x0 = std::max(left, t.clip.x0);
  const int x1 = std::min(right + 1, t.clip.x1);
  if (x0 < x1) {
    if (top >= t.clip.y0 && top < t.clip.y1) {
      std::fill(t.row(top) + x0, t.row(top) + x1, op.color);
    }
    if (bottom >= t.clip.y0 && bottom < t.clip.y1) {
      std::fill(t.row(bottom) + x0, t.row(bottom) + x1, op.color);
    }
  }
  const int y0 = std::max(top, t.clip.y0);
  const int y1 = std::min(bottom + 1, t.clip.y1);
  for (int y = y0; y < y1; ++y) {
    t.set(left, y, op.color);
    t.set(right, y, op.color);
  }
}

/// The exact Bresenham walk `draw_line` / `draw_dashed_line` take,
/// with writes clipped to the tile.
void tile_line(const TileView& t, const FrameOp& op) {
  int x0 = op.x, y0 = op.y;
  const int x1 = op.x2, y1 = op.y2;
  const int on = op.dashed ? std::max(1, op.dash_on) : 1;
  const int off = op.dashed ? std::max(0, op.dash_off) : 0;
  const int period = on + off;
  int dx = std::abs(x1 - x0);
  int dy = -std::abs(y1 - y0);
  const int sx = x0 < x1 ? 1 : -1;
  const int sy = y0 < y1 ? 1 : -1;
  int err = dx + dy;
  int step = 0;
  for (;;) {
    if (!op.dashed || step % period < on) t.set(x0, y0, op.color);
    if (x0 == x1 && y0 == y1) break;
    const int e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      x0 += sx;
    }
    if (e2 <= dx) {
      err += dx;
      y0 += sy;
    }
    ++step;
  }
}

/// A prerendered marker footprint: which pixels of the (2r+1)^2
/// neighborhood `draw_marker` inks. Rendered once per distinct
/// (shape, radius) and blitted per instance.
struct MarkerStamp {
  int r = 0;
  std::vector<std::uint8_t> mask;  // (2r+1) x (2r+1), row-major

  static MarkerStamp build(image::MarkerShape shape, int radius) {
    MarkerStamp stamp;
    stamp.r = std::max(1, radius);
    const int side = 2 * stamp.r + 1;
    // Render the legacy primitive black-on-white and read the ink
    // back — the stamp is byte-faithful to draw_marker by definition.
    Raster tmp(side, side, image::colors::kWhite);
    image::draw_marker(tmp, stamp.r, stamp.r, shape, image::colors::kBlack,
                       stamp.r);
    stamp.mask.resize(static_cast<std::size_t>(side) *
                      static_cast<std::size_t>(side));
    for (int y = 0; y < side; ++y) {
      for (int x = 0; x < side; ++x) {
        stamp.mask[static_cast<std::size_t>(y * side + x)] =
            tmp.at(x, y) == image::colors::kBlack ? 1 : 0;
      }
    }
    return stamp;
  }
};

/// Unclipped masked blit with compile-time bounds. The constant trip
/// counts are the entire point: the optimizer fully unrolls both
/// loops, which a runtime `span` defeats — measured ~4x on 10k-marker
/// frames. Mask rows are `mask_stride` bytes apart, dst rows `stride`
/// pixels. The select writes a masked-off pixel's own value back;
/// that is byte-neutral and safe because the whole W x H window lies
/// inside this tile's clip (the caller checked).
template <int W, int H>
void masked_blit_fixed(Color* dst0, int stride, const std::uint8_t* mask,
                       int mask_stride, Color c) {
  for (int y = 0; y < H; ++y) {
    Color* dst = dst0 + static_cast<std::ptrdiff_t>(y) * stride;
    const std::uint8_t* m = mask + static_cast<std::ptrdiff_t>(y) * mask_stride;
    for (int x = 0; x < W; ++x) {
      dst[x] = m[x] != 0 ? c : dst[x];
    }
  }
}

/// Runtime-bounds fallback for clipped or odd-sized blits.
void masked_blit(Color* dst0, int stride, const std::uint8_t* mask,
                 int mask_stride, Color c, int w, int h) {
  for (int y = 0; y < h; ++y) {
    Color* dst = dst0 + static_cast<std::ptrdiff_t>(y) * stride;
    const std::uint8_t* m = mask + static_cast<std::ptrdiff_t>(y) * mask_stride;
    for (int x = 0; x < w; ++x) {
      dst[x] = m[x] != 0 ? c : dst[x];
    }
  }
}

using StampKey = std::pair<image::MarkerShape, int>;

/// Map value: the stamp plus its slot in the frame's stamp table
/// (replay records carry the slot index, not a pointer).
struct StampEntry {
  MarkerStamp stamp;
  std::uint32_t id = 0;
};
using StampCache = std::map<StampKey, StampEntry>;

/// Blit one stamp instance. Markers are tiny (a radius-2 dot is 5x5),
/// so the interesting case is the unclipped one: dispatch it to the
/// fixed-size blit for the common radii and let everything else —
/// tile-straddling instances, exotic radii — take the generic loop.
void tile_marker(const TileView& t, int mx, int my, Color c,
                 const MarkerStamp& stamp) {
  const int side = 2 * stamp.r + 1;
  const int ox = mx - stamp.r;  // stamp origin in frame space
  const int oy = my - stamp.r;
  const int x0 = std::max(ox, t.clip.x0);
  const int y0 = std::max(oy, t.clip.y0);
  const int x1 = std::min(ox + side, t.clip.x1);
  const int y1 = std::min(oy + side, t.clip.y1);
  if (x0 >= x1 || y0 >= y1) return;
  if (x0 == ox && y0 == oy && x1 == ox + side && y1 == oy + side) {
    Color* dst0 = t.row(oy) + ox;
    const std::uint8_t* mask = stamp.mask.data();
    switch (side) {
      case 3:
        masked_blit_fixed<3, 3>(dst0, t.stride, mask, side, c);
        return;
      case 5:
        masked_blit_fixed<5, 5>(dst0, t.stride, mask, side, c);
        return;
      case 7:
        masked_blit_fixed<7, 7>(dst0, t.stride, mask, side, c);
        return;
      case 9:
        masked_blit_fixed<9, 9>(dst0, t.stride, mask, side, c);
        return;
      default:
        break;
    }
  }
  const std::uint8_t* mask =
      stamp.mask.data() +
      static_cast<std::size_t>(y0 - oy) * static_cast<std::size_t>(side) +
      static_cast<std::size_t>(x0 - ox);
  masked_blit(t.row(y0) + x0, t.stride, mask, side, c, x1 - x0, y1 - y0);
}

/// One glyph from the shared atlas into the tile window. The atlas
/// page is the mask (1 byte per pixel, nonzero = inked), read in
/// place — no per-row staging buffer.
void tile_blit_glyph(const TileView& t, const GlyphAtlas& atlas, int x,
                     int y, char ch, Color c, int scale) {
  const image::AtlasGlyph* glyph = atlas.find(ch, scale);
  if (glyph == nullptr) {
    // Oversize scale: the legacy per-pixel walk, clipped to the tile.
    for (int row = 0; row < image::kGlyphHeight; ++row) {
      for (int col = 0; col < image::kGlyphWidth; ++col) {
        if (!image::glyph_pixel(ch, col, row)) continue;
        for (int dy = 0; dy < scale; ++dy) {
          for (int dx = 0; dx < scale; ++dx) {
            t.set(x + col * scale + dx, y + row * scale + dy, c);
          }
        }
      }
    }
    return;
  }
  const int x0 = std::max(x, t.clip.x0);
  const int y0 = std::max(y, t.clip.y0);
  const int x1 = std::min(x + glyph->w, t.clip.x1);
  const int y1 = std::min(y + glyph->h, t.clip.y1);
  if (x0 >= x1 || y0 >= y1) return;
  const std::uint8_t* mask0 = atlas.row(glyph->y) + glyph->x;
  const int mask_stride = atlas.page_width();
  if (x0 == x && y0 == y && x1 == x + glyph->w && y1 == y + glyph->h) {
    Color* dst0 = t.row(y) + x;
    switch (scale) {
      case 1:
        masked_blit_fixed<image::kGlyphWidth, image::kGlyphHeight>(
            dst0, t.stride, mask0, mask_stride, c);
        return;
      case 2:
        masked_blit_fixed<2 * image::kGlyphWidth, 2 * image::kGlyphHeight>(
            dst0, t.stride, mask0, mask_stride, c);
        return;
      case 3:
        masked_blit_fixed<3 * image::kGlyphWidth, 3 * image::kGlyphHeight>(
            dst0, t.stride, mask0, mask_stride, c);
        return;
      case 4:
        masked_blit_fixed<4 * image::kGlyphWidth, 4 * image::kGlyphHeight>(
            dst0, t.stride, mask0, mask_stride, c);
        return;
      default:
        break;
    }
  }
  const std::uint8_t* mask = mask0 +
                             static_cast<std::ptrdiff_t>(y0 - y) * mask_stride +
                             (x0 - x);
  masked_blit(t.row(y0) + x0, t.stride, mask, mask_stride, c, x1 - x0,
              y1 - y0);
}

/// `draw_text`'s exact layout loop, glyphs via the atlas.
void tile_text(const TileView& t, const FrameOp& op,
               const GlyphAtlas& atlas) {
  const int scale = std::max(1, op.scale);
  int cx = op.x;
  int cy = op.y;
  for (const char ch : op.text) {
    if (ch == '\n') {
      cx = op.x;
      cy += image::kLineAdvance * scale;
      continue;
    }
    tile_blit_glyph(t, atlas, cx, cy, ch, op.color, scale);
    cx += image::kGlyphAdvance * scale;
  }
}

/// A bin entry: everything the replay loop needs for the hot kinds,
/// packed small. A fleet frame is dominated by thousands of marker
/// instances, and `FrameOp` (with its embedded std::string) is ~10x
/// this size — replaying bins through the full op array walks ~1 MB
/// in tile-scattered order, which costs more in cache misses than the
/// blits themselves. Markers replay entirely from the record; the
/// rarer kinds (fills, outlines, lines, text) indirect back to the op.
struct ReplayRec {
  std::int32_t x = 0, y = 0;
  Color color{};
  std::uint8_t kind = 0;
  std::uint32_t stamp_id = 0;  ///< index into the frame's stamp table
  std::uint32_t op_idx = 0;
};

void replay_rec(const TileView& t, const ReplayRec& rec,
                const FleetFrameSpec& spec,
                const std::vector<const MarkerStamp*>& stamp_ptrs,
                const GlyphAtlas& atlas) {
  switch (static_cast<FrameOp::Kind>(rec.kind)) {
    case FrameOp::Kind::kFillRect:
      tile_fill_rect(t, spec.ops[rec.op_idx]);
      break;
    case FrameOp::Kind::kRect:
      tile_rect_outline(t, spec.ops[rec.op_idx]);
      break;
    case FrameOp::Kind::kLine:
      tile_line(t, spec.ops[rec.op_idx]);
      break;
    case FrameOp::Kind::kMarker:
      tile_marker(t, rec.x, rec.y, rec.color, *stamp_ptrs[rec.stamp_id]);
      break;
    case FrameOp::Kind::kText:
      tile_text(t, spec.ops[rec.op_idx], atlas);
      break;
  }
}

}  // namespace

// --- FleetFrameSpec builders ---------------------------------------

void FleetFrameSpec::add_fill_rect(int x, int y, int w, int h,
                                   image::Color c) {
  FrameOp op;
  op.kind = FrameOp::Kind::kFillRect;
  op.x = x;
  op.y = y;
  op.w = w;
  op.h = h;
  op.color = c;
  ops.push_back(std::move(op));
}

void FleetFrameSpec::add_rect(int x, int y, int w, int h, image::Color c) {
  FrameOp op;
  op.kind = FrameOp::Kind::kRect;
  op.x = x;
  op.y = y;
  op.w = w;
  op.h = h;
  op.color = c;
  ops.push_back(std::move(op));
}

void FleetFrameSpec::add_line(int x0, int y0, int x1, int y1,
                              image::Color c, bool dashed, int on,
                              int off) {
  FrameOp op;
  op.kind = FrameOp::Kind::kLine;
  op.x = x0;
  op.y = y0;
  op.x2 = x1;
  op.y2 = y1;
  op.color = c;
  op.dashed = dashed;
  op.dash_on = on;
  op.dash_off = off;
  ops.push_back(std::move(op));
}

void FleetFrameSpec::add_marker(int cx, int cy, image::MarkerShape shape,
                                image::Color c, int radius) {
  FrameOp op;
  op.kind = FrameOp::Kind::kMarker;
  op.x = cx;
  op.y = cy;
  op.shape = shape;
  op.color = c;
  op.radius = radius;
  ops.push_back(std::move(op));
}

void FleetFrameSpec::add_text(int x, int y, std::string text,
                              image::Color c, int scale) {
  FrameOp op;
  op.kind = FrameOp::Kind::kText;
  op.x = x;
  op.y = y;
  op.text = std::move(text);
  op.color = c;
  op.scale = scale;
  ops.push_back(std::move(op));
}

// --- FleetCompositor -----------------------------------------------

FleetCompositor::FleetCompositor(FleetCompositorOptions options)
    : options_(options) {}

image::Raster FleetCompositor::render(const FleetFrameSpec& spec) const {
  static metrics::Counter& frames = metrics::counter("compose.frames");
  static metrics::Counter& tiles_rendered = metrics::counter("compose.tiles");
  static metrics::Counter& ops_submitted = metrics::counter("compose.ops");
  static metrics::Counter& pixels = metrics::counter("compose.pixels");
  static metrics::HistogramMetric& render_s =
      metrics::histogram("compose.render.seconds");

  if (spec.width <= 0 || spec.height <= 0) return Raster{};
  const metrics::ScopedTimer timer(render_s);

  const int tile = std::max(1, options_.tile_px);
  const int tiles_x = (spec.width + tile - 1) / tile;
  const int tiles_y = (spec.height + tile - 1) / tile;
  const std::size_t tile_count =
      static_cast<std::size_t>(tiles_x) * static_cast<std::size_t>(tiles_y);

  // Bin every op to the tiles its bounding box touches, in op order —
  // each bin is an ordered sub-sequence of the global draw list. The
  // bins are laid out CSR-style (one counting pass, one placement
  // pass) so a 10k-op frame does two flat array sweeps instead of
  // thousands of vector reallocations.
  const std::size_t op_count = spec.ops.size();
  // Pixel -> tile index lookup tables: a clamped bbox needs four
  // tile coordinates, and eight runtime integer divisions per op
  // (two passes) cost more than the whole 10k-marker replay.
  std::vector<std::uint32_t> tile_of_x(static_cast<std::size_t>(spec.width));
  std::vector<std::uint32_t> tile_of_y(static_cast<std::size_t>(spec.height));
  for (int x = 0; x < spec.width; ++x) {
    tile_of_x[static_cast<std::size_t>(x)] =
        static_cast<std::uint32_t>(x / tile);
  }
  for (int y = 0; y < spec.height; ++y) {
    tile_of_y[static_cast<std::size_t>(y)] =
        static_cast<std::uint32_t>(y / tile);
  }
  struct TileSpan {
    std::uint32_t tx0, tx1, ty0, ty1;  // inclusive tile range
    bool live;
  };
  std::vector<TileSpan> spans(op_count);
  std::vector<std::uint32_t> bin_count(tile_count, 0);
  for (std::size_t i = 0; i < op_count; ++i) {
    Box box = op_bbox(spec.ops[i]);
    box.x0 = std::max(box.x0, 0);
    box.y0 = std::max(box.y0, 0);
    box.x1 = std::min(box.x1, spec.width);
    box.y1 = std::min(box.y1, spec.height);
    TileSpan& s = spans[i];
    s.live = !box.empty();
    if (!s.live) continue;
    s.tx0 = tile_of_x[static_cast<std::size_t>(box.x0)];
    s.tx1 = tile_of_x[static_cast<std::size_t>(box.x1 - 1)];
    s.ty0 = tile_of_y[static_cast<std::size_t>(box.y0)];
    s.ty1 = tile_of_y[static_cast<std::size_t>(box.y1 - 1)];
    for (unsigned ty = s.ty0; ty <= s.ty1; ++ty) {
      for (unsigned tx = s.tx0; tx <= s.tx1; ++tx) {
        ++bin_count[static_cast<std::size_t>(ty) *
                        static_cast<std::size_t>(tiles_x) +
                    static_cast<std::size_t>(tx)];
      }
    }
  }
  std::vector<std::size_t> bin_start(tile_count + 1, 0);
  for (std::size_t t = 0; t < tile_count; ++t) {
    bin_start[t + 1] = bin_start[t] + bin_count[t];
  }

  // Marker stamps are resolved to a per-frame table here — fleets
  // draw thousands of identical dots, and a map lookup per
  // (tile, op) replay was the single hottest instruction path in the
  // first cut. The one-entry memo makes the common single-stamp frame
  // O(ops) with no lookups.
  StampCache stamps;
  std::vector<const MarkerStamp*> stamp_ptrs;
  std::vector<std::uint32_t> op_stamp_id(op_count, 0);
  StampKey last_key{image::MarkerShape::kCross, -1};
  std::uint32_t last_id = 0;
  for (std::size_t i = 0; i < op_count; ++i) {
    const FrameOp& op = spec.ops[i];
    if (op.kind != FrameOp::Kind::kMarker) continue;
    const StampKey key{op.shape, std::max(1, op.radius)};
    if (key != last_key) {
      auto [it, inserted] = stamps.try_emplace(key);
      if (inserted) {
        it->second.stamp = MarkerStamp::build(op.shape, op.radius);
        it->second.id = static_cast<std::uint32_t>(stamp_ptrs.size());
        stamp_ptrs.push_back(&it->second.stamp);
      }
      last_key = key;
      last_id = it->second.id;
    }
    op_stamp_id[i] = last_id;
  }

  // Placement pass: copy each op's hot fields into its bins' compact
  // replay records (markers never touch the op array again).
  std::vector<ReplayRec> bin_recs(bin_start[tile_count]);
  std::vector<std::size_t> bin_fill(bin_start.begin(),
                                    bin_start.end() - 1);
  for (std::size_t i = 0; i < op_count; ++i) {
    const TileSpan& s = spans[i];
    if (!s.live) continue;
    const FrameOp& op = spec.ops[i];
    ReplayRec rec;
    rec.x = op.x;
    rec.y = op.y;
    rec.color = op.color;
    rec.kind = static_cast<std::uint8_t>(op.kind);
    rec.stamp_id = op_stamp_id[i];
    rec.op_idx = static_cast<std::uint32_t>(i);
    for (unsigned ty = s.ty0; ty <= s.ty1; ++ty) {
      for (unsigned tx = s.tx0; tx <= s.tx1; ++tx) {
        const std::size_t t =
            static_cast<std::size_t>(ty) * static_cast<std::size_t>(tiles_x) +
            static_cast<std::size_t>(tx);
        bin_recs[bin_fill[t]++] = rec;
      }
    }
  }
  const GlyphAtlas& atlas = GlyphAtlas::shared();

  Raster out(spec.width, spec.height, spec.background);
  Color* data = out.data().data();

  concurrency::ThreadPool& pool =
      options_.pool ? *options_.pool : concurrency::default_pool();
  concurrency::parallel_for(pool, 0, tile_count, [&](std::size_t t) {
    const int tx = static_cast<int>(t % static_cast<std::size_t>(tiles_x));
    const int ty = static_cast<int>(t / static_cast<std::size_t>(tiles_x));
    const TileView view{
        data, spec.width,
        Box{tx * tile, ty * tile, std::min((tx + 1) * tile, spec.width),
            std::min((ty + 1) * tile, spec.height)}};
    for (std::size_t k = bin_start[t]; k < bin_start[t + 1]; ++k) {
      replay_rec(view, bin_recs[k], spec, stamp_ptrs, atlas);
    }
  });

  frames.add(1);
  tiles_rendered.add(tile_count);
  ops_submitted.add(spec.ops.size());
  pixels.add(static_cast<std::uint64_t>(spec.width) *
             static_cast<std::uint64_t>(spec.height));
  return out;
}

image::Raster FleetCompositor::render_serial(
    const FleetFrameSpec& spec) const {
  if (spec.width <= 0 || spec.height <= 0) return Raster{};
  Raster out(spec.width, spec.height, spec.background);
  for (const FrameOp& op : spec.ops) {
    switch (op.kind) {
      case FrameOp::Kind::kFillRect:
        image::fill_rect(out, op.x, op.y, op.w, op.h, op.color);
        break;
      case FrameOp::Kind::kRect:
        image::draw_rect(out, op.x, op.y, op.w, op.h, op.color);
        break;
      case FrameOp::Kind::kLine:
        if (op.dashed) {
          image::draw_dashed_line(out, op.x, op.y, op.x2, op.y2, op.color,
                                  op.dash_on, op.dash_off);
        } else {
          image::draw_line(out, op.x, op.y, op.x2, op.y2, op.color);
        }
        break;
      case FrameOp::Kind::kMarker:
        image::draw_marker(out, op.x, op.y, op.shape, op.color, op.radius);
        break;
      case FrameOp::Kind::kText:
        image::draw_text(out, op.x, op.y, op.text, op.color,
                         std::max(1, op.scale));
        break;
    }
  }
  return out;
}

}  // namespace loctk::floorplan

#pragma once

/// \file fleet_compositor.hpp
/// Tile-parallel frame composition for fleet-scale visualization.
///
/// The paper's Compositor (§4.2) draws a handful of marks on one
/// floor plan; a campus soak wants a frame per tick carrying a
/// coverage heatmap, a thousand AP labels, and ten thousand device
/// markers. `FleetCompositor` renders such frames from a deferred
/// draw list (`FleetFrameSpec`): the output raster is split into
/// fixed-size tiles, every op is binned to the tiles its bounding box
/// touches, and tiles are dispatched over the `ThreadPool` — each
/// tile replays its ops, in global op order, writing only pixels it
/// owns.
///
/// Determinism argument (docs/VISUALIZATION.md): tiles partition the
/// raster, so every pixel is written by exactly one tile; a pixel's
/// final color is the last op covering it in op order, which each
/// tile preserves because bins are built in op order. Scheduling can
/// reorder *tiles*, never the ops within a pixel — so the frame is
/// byte-identical across thread counts AND tile sizes, and identical
/// to the serial single-pass reference (`render_serial`, which runs
/// the legacy per-call primitives). The quick-tier determinism test
/// asserts all of it.
///
/// Speed comes from three places: tile parallelism, the packed glyph
/// atlas (`draw_text_atlas` blits instead of per-pixel font walks),
/// and span-based fills/marker stamps that write rows directly
/// instead of calling bounds-checked `set_pixel` per pixel — all
/// pinned to the legacy pixels by the golden tests.

#include <cstdint>
#include <string>
#include <vector>

#include "concurrency/thread_pool.hpp"
#include "image/draw.hpp"
#include "image/raster.hpp"

namespace loctk::floorplan {

/// One deferred drawing command, in pixel space. Ops are opaque
/// (no alpha): later ops overwrite earlier ones where they overlap.
struct FrameOp {
  enum class Kind : std::uint8_t {
    kFillRect,  ///< solid axis-aligned rect (heatmap cells)
    kRect,      ///< rect outline (building footprints, legends)
    kLine,      ///< thin Bresenham line, optionally dashed
    kMarker,    ///< one marker glyph (device dots, AP triangles)
    kText,      ///< multi-line label via the glyph atlas
  };

  Kind kind = Kind::kFillRect;
  image::Color color;
  int x = 0;  ///< top-left (rects/text), first endpoint (lines), center (markers)
  int y = 0;
  int w = 0;  ///< rects only
  int h = 0;
  int x2 = 0;  ///< lines only: second endpoint
  int y2 = 0;
  int radius = 4;                                      ///< markers only
  image::MarkerShape shape = image::MarkerShape::kDot; ///< markers only
  int scale = 1;                                       ///< text only
  bool dashed = false;                                 ///< lines only
  int dash_on = 4;
  int dash_off = 4;
  std::string text;  ///< text only
};

/// A frame to composite: canvas size, background, and the draw list.
struct FleetFrameSpec {
  int width = 0;
  int height = 0;
  image::Color background = image::colors::kWhite;
  std::vector<FrameOp> ops;

  void add_fill_rect(int x, int y, int w, int h, image::Color c);
  void add_rect(int x, int y, int w, int h, image::Color c);
  void add_line(int x0, int y0, int x1, int y1, image::Color c,
                bool dashed = false, int on = 4, int off = 4);
  void add_marker(int cx, int cy, image::MarkerShape shape, image::Color c,
                  int radius = 4);
  void add_text(int x, int y, std::string text, image::Color c,
                int scale = 1);
};

struct FleetCompositorOptions {
  /// Tile edge in pixels. Output bytes do not depend on this (see the
  /// determinism argument); only scheduling granularity does.
  int tile_px = 64;
  /// Pool to dispatch tiles on; nullptr uses the process default.
  concurrency::ThreadPool* pool = nullptr;
};

class FleetCompositor {
 public:
  explicit FleetCompositor(FleetCompositorOptions options = {});

  /// Tile-parallel composition. Byte-identical to `render_serial`.
  image::Raster render(const FleetFrameSpec& spec) const;

  /// Single-pass reference: replays the ops through the legacy
  /// per-call primitives (`fill_rect`, `draw_marker`, `draw_text`)
  /// over the full raster. This is both the determinism oracle and
  /// the baseline `bench/perf_compose` measures the tiled path
  /// against.
  image::Raster render_serial(const FleetFrameSpec& spec) const;

  const FleetCompositorOptions& options() const { return options_; }

 private:
  FleetCompositorOptions options_;
};

}  // namespace loctk::floorplan

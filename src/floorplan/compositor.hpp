#pragma once

/// \file compositor.hpp
/// The Floor Plan Compositor: the paper's §4.2 component.
///
/// "The Floor Plan Compositor creates images from a floor plan and
/// marks the image with locations out of user-given coordinate
/// values. ... We can take a set of testing locations in a room, run
/// the system, and use the Floor Plan Compositor to display all the
/// testing locations and their corresponding estimated locations."
///
/// `Compositor` takes a calibrated `FloorPlan`, a list of world-space
/// marks, and renders the annotated image; `composite_evaluation` is
/// the paper's exact use case — true vs estimated test points joined
/// by error whiskers.

#include <string>
#include <vector>

#include "floorplan/floor_plan.hpp"
#include "image/draw.hpp"
#include "image/raster.hpp"

namespace loctk::floorplan {

/// One world-space mark to draw.
struct Mark {
  geom::Vec2 world;
  image::MarkerShape shape = image::MarkerShape::kCross;
  image::Color color = image::colors::kRed;
  std::string label;  ///< optional text drawn next to the mark
};

/// Rendering options.
struct CompositorOptions {
  int marker_radius = 5;
  bool draw_labels = true;
  /// Light world-space grid every `grid_spacing_ft` feet (0 = off).
  double grid_spacing_ft = 10.0;
  /// Legend box in the top-left corner.
  bool draw_legend = true;
  std::string title;
};

/// Renders marks over a copy of the plan's raster.
class Compositor {
 public:
  explicit Compositor(const FloorPlan& plan, CompositorOptions options = {})
      : plan_(&plan), options_(std::move(options)) {}

  /// Floor plan + grid + marks (+ legend/title). The plan must be
  /// calibrated; throws FloorPlanError otherwise.
  image::Raster render(const std::vector<Mark>& marks) const;

  /// Draws a line between two world points (e.g. an error whisker or
  /// a tracked path segment) onto an already-rendered image.
  void draw_world_line(image::Raster& img, geom::Vec2 a, geom::Vec2 b,
                       image::Color color, bool dashed = false) const;

  const CompositorOptions& options() const { return options_; }

 private:
  const FloorPlan* plan_;  // non-owning
  CompositorOptions options_;
};

/// One evaluated test point: where the client truly stood and where
/// the locator put it.
struct EvaluatedPoint {
  geom::Vec2 truth;
  geom::Vec2 estimate;
  std::string label;
};

/// The paper's visual test harness: true locations as green crosses,
/// estimates as red X's, dashed whiskers joining each pair.
image::Raster composite_evaluation(const FloorPlan& plan,
                                   const std::vector<EvaluatedPoint>& points,
                                   CompositorOptions options = {});

}  // namespace loctk::floorplan

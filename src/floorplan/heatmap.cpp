#include "floorplan/heatmap.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "floorplan/floor_plan.hpp"
#include "floorplan/processor.hpp"
#include "image/draw.hpp"
#include "image/font.hpp"

namespace loctk::floorplan {

image::Color heat_color(double t) {
  t = std::clamp(t, 0.0, 1.0);
  // Piecewise-linear ramp over five stops.
  struct Stop {
    double t;
    image::Color c;
  };
  static constexpr Stop stops[] = {
      {0.00, {30, 60, 180}},    // deep blue
      {0.25, {40, 170, 200}},   // cyan
      {0.50, {60, 180, 90}},    // green
      {0.75, {235, 200, 50}},   // yellow
      {1.00, {210, 50, 40}},    // red
  };
  for (std::size_t i = 1; i < std::size(stops); ++i) {
    if (t <= stops[i].t) {
      const double span = stops[i].t - stops[i - 1].t;
      const double f = span > 0.0 ? (t - stops[i - 1].t) / span : 0.0;
      return stops[i - 1].c.blend(stops[i].c, f);
    }
  }
  return stops[std::size(stops) - 1].c;
}

image::Raster render_field_heatmap(
    const radio::Environment& env,
    const std::function<double(geom::Vec2)>& field,
    const HeatmapOptions& options) {
  // Reuse the calibrated plan geometry so pixels <-> feet match the
  // other renders exactly.
  FloorPlan plan = render_environment(env, options.pixels_per_foot,
                                      options.margin_px);
  image::Raster img(plan.raster().width(), plan.raster().height(),
                    image::colors::kWhite);

  const geom::Rect fp = env.footprint();
  const double span = options.hi_value - options.lo_value;
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      const geom::Vec2 w = plan.to_world(
          {static_cast<double>(x) + 0.5, static_cast<double>(y) + 0.5});
      if (!fp.contains(w)) continue;
      const double v = field(w);
      const double t = span != 0.0 ? (v - options.lo_value) / span : 0.0;
      img.set_pixel(x, y, heat_color(t));
    }
  }

  if (options.draw_walls) {
    auto px = [&](geom::Vec2 w) { return plan.to_pixel(w); };
    for (int i = 0; i < 4; ++i) {
      const PixelPoint a = px(fp.corner(i));
      const PixelPoint b = px(fp.corner((i + 1) % 4));
      image::draw_thick_line(img, static_cast<int>(a.x),
                             static_cast<int>(a.y), static_cast<int>(b.x),
                             static_cast<int>(b.y), image::colors::kBlack,
                             3);
    }
    for (const radio::Wall& wall : env.walls()) {
      const PixelPoint a = px(wall.segment.a);
      const PixelPoint b = px(wall.segment.b);
      image::draw_thick_line(img, static_cast<int>(a.x),
                             static_cast<int>(a.y), static_cast<int>(b.x),
                             static_cast<int>(b.y),
                             image::colors::kDarkGray, 2);
    }
  }
  if (options.draw_aps) {
    for (const radio::AccessPoint& ap : env.access_points()) {
      const PixelPoint p = plan.to_pixel(ap.position);
      image::draw_marker(img, static_cast<int>(p.x), static_cast<int>(p.y),
                         image::MarkerShape::kTriangle,
                         image::colors::kWhite, 5);
      image::draw_text(img, static_cast<int>(p.x) + 7,
                       static_cast<int>(p.y) - 3, ap.name,
                       image::colors::kWhite);
    }
  }
  if (options.draw_legend) {
    // Vertical ramp strip in the right margin.
    const int strip_w = 10;
    const int x0 = img.width() - options.margin_px + 4;
    const int y0 = options.margin_px;
    const int y1 = img.height() - options.margin_px;
    for (int y = y0; y < y1; ++y) {
      const double t = 1.0 - static_cast<double>(y - y0) /
                                 static_cast<double>(y1 - y0 - 1);
      for (int x = x0; x < x0 + strip_w; ++x) {
        img.set_pixel(x, y, heat_color(t));
      }
    }
    image::draw_rect(img, x0, y0, strip_w, y1 - y0, image::colors::kBlack);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", options.hi_value);
    image::draw_text(img, x0 - 14, y0 - 10, buf, image::colors::kBlack);
    std::snprintf(buf, sizeof(buf), "%.0f", options.lo_value);
    image::draw_text(img, x0 - 14, y1 + 3, buf, image::colors::kBlack);
  }
  if (!options.title.empty()) {
    image::draw_text(img, 6, 6, options.title, image::colors::kBlack);
  }
  return img;
}

}  // namespace loctk::floorplan

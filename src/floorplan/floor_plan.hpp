#pragma once

/// \file floor_plan.hpp
/// The annotated floor plan: raster + scale + origin + markers.
///
/// This is the data model behind the paper's Floor Plan Processor
/// (§4.1). A floor plan starts as a scanned raster image; the user
/// then (1) places access points, (2) sets the scale from two clicked
/// points and a real distance, (3) sets the point of origin, and
/// (4) attaches location names to clicked points. All clicks are in
/// *pixel* coordinates; the scale/origin pair defines the world frame
/// (feet) the localization pipeline works in. World y grows upward
/// while raster y grows downward, so the transform flips y.

#include <filesystem>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "geom/rect.hpp"
#include "geom/vec2.hpp"
#include "image/raster.hpp"

namespace loctk::floorplan {

/// A pixel coordinate (continuous; clicks may be fractional after
/// zooming).
struct PixelPoint {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const PixelPoint&, const PixelPoint&) = default;
};

/// An access point placed on the plan (paper §4.1 item 2).
struct PlacedAccessPoint {
  std::string name;
  PixelPoint pixel;

  friend bool operator==(const PlacedAccessPoint&,
                         const PlacedAccessPoint&) = default;
};

/// A named location (paper §4.1 item 5), e.g. "room D22".
struct NamedPlace {
  std::string name;
  PixelPoint pixel;

  friend bool operator==(const NamedPlace&, const NamedPlace&) = default;
};

/// Error type for floor-plan operations performed out of order (e.g.
/// converting to world coordinates before the scale is set).
class FloorPlanError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The annotated floor plan.
class FloorPlan {
 public:
  FloorPlan() = default;
  explicit FloorPlan(image::Raster raster) : raster_(std::move(raster)) {}

  const image::Raster& raster() const { return raster_; }
  image::Raster& raster() { return raster_; }
  void set_raster(image::Raster r) { raster_ = std::move(r); }

  /// --- calibration -------------------------------------------------

  /// Feet represented by one pixel; unset until calibrated.
  std::optional<double> feet_per_pixel() const { return feet_per_pixel_; }

  /// Calibrates the scale from two clicked pixels a known real
  /// distance apart (paper §4.1 item 3). Throws FloorPlanError when
  /// the points coincide or the distance is not positive.
  void set_scale_from_points(PixelPoint p1, PixelPoint p2,
                             double real_distance_ft);

  /// Directly sets feet-per-pixel (> 0).
  void set_feet_per_pixel(double fpp);

  /// Pixel location of the world origin (paper §4.1 item 4).
  std::optional<PixelPoint> origin_pixel() const { return origin_; }
  void set_origin(PixelPoint p) { origin_ = p; }

  /// True once both scale and origin are set.
  bool calibrated() const {
    return feet_per_pixel_.has_value() && origin_.has_value();
  }

  /// --- coordinate transforms (require calibrated()) ----------------

  /// Pixel -> world feet. Throws FloorPlanError when uncalibrated.
  geom::Vec2 to_world(PixelPoint p) const;

  /// World feet -> pixel. Throws FloorPlanError when uncalibrated.
  PixelPoint to_pixel(geom::Vec2 w) const;

  /// World-space rectangle covered by the raster (uncalibrated ->
  /// throws).
  geom::Rect world_bounds() const;

  /// --- annotations --------------------------------------------------

  const std::vector<PlacedAccessPoint>& access_points() const {
    return aps_;
  }
  void add_access_point(std::string name, PixelPoint p);
  /// World position of AP `name`; nullopt if absent (throws when
  /// uncalibrated).
  std::optional<geom::Vec2> access_point_world(const std::string& name) const;

  const std::vector<NamedPlace>& places() const { return places_; }
  void add_place(std::string name, PixelPoint p);
  std::optional<geom::Vec2> place_world(const std::string& name) const;

  /// Name of the annotated place nearest to world point `w`
  /// (the paper's abstraction step: coordinates -> "room D22").
  std::optional<std::string> nearest_place(geom::Vec2 w) const;

 private:
  image::Raster raster_;
  std::optional<double> feet_per_pixel_;
  std::optional<PixelPoint> origin_;
  std::vector<PlacedAccessPoint> aps_;
  std::vector<NamedPlace> places_;
};

}  // namespace loctk::floorplan

#pragma once

/// \file heatmap.hpp
/// Signal-coverage heat maps over the floor plan.
///
/// The paper's toolkit renders floor plans and marks; a natural
/// expansion (§6 item 4: "we will expand our location toolkit") is
/// visualizing the signal landscape itself — per-AP coverage from the
/// propagation model, or the *trained* radio map interpolated from
/// the database. The renderer is generic over any scalar field so
/// both cases (and likelihood surfaces) use the same code path.

#include <functional>
#include <string>

#include "geom/vec2.hpp"
#include "image/raster.hpp"
#include "radio/environment.hpp"

namespace loctk::floorplan {

/// Rendering options for scalar-field heat maps.
struct HeatmapOptions {
  /// Field values mapped onto the color ramp ends (dBm by default).
  double lo_value = -90.0;
  double hi_value = -30.0;
  double pixels_per_foot = 8.0;
  int margin_px = 24;
  /// Overlay walls and the footprint outline.
  bool draw_walls = true;
  /// Draw AP markers.
  bool draw_aps = true;
  /// Color-ramp legend strip on the right edge.
  bool draw_legend = true;
  std::string title;
};

/// Perceptual-enough blue→cyan→green→yellow→red ramp; `t` in [0, 1]
/// (clamped).
image::Color heat_color(double t);

/// Renders `field(world_point)` over the environment footprint.
/// The field is sampled once per pixel.
image::Raster render_field_heatmap(
    const radio::Environment& env,
    const std::function<double(geom::Vec2)>& field,
    const HeatmapOptions& options = {});

}  // namespace loctk::floorplan

#include "radio/propagation.hpp"

#include <cmath>

#include "stats/gaussian.hpp"
#include "stats/rng.hpp"

namespace loctk::radio {

MultipathField::MultipathField(std::uint64_t seed, int ap_index,
                               double amplitude_db, int components)
    : amplitude_(amplitude_db) {
  stats::Rng rng(seed);
  stats::Rng local = rng.fork(static_cast<std::uint64_t>(ap_index) + 1);
  waves_.reserve(static_cast<std::size_t>(components));
  for (int i = 0; i < components; ++i) {
    const double wavelength = local.uniform(4.0, 25.0);  // feet
    const double heading = local.uniform(0.0, stats::kTwoPi);
    const double k = stats::kTwoPi / wavelength;
    Wave w;
    w.k = {k * std::cos(heading), k * std::sin(heading)};
    w.phase = local.uniform(0.0, stats::kTwoPi);
    // Divide so the sum's peak is ~amplitude_db regardless of count.
    w.amp = amplitude_db / std::sqrt(static_cast<double>(components));
    waves_.push_back(w);
  }
}

double MultipathField::bias_db(geom::Vec2 pos) const {
  double total = 0.0;
  for (const Wave& w : waves_) {
    total += w.amp * std::sin(w.k.dot(pos) + w.phase);
  }
  return total;
}

Propagation::Propagation(const Environment& env, PropagationConfig config)
    : env_(&env), config_(config) {
  fields_.reserve(env.access_points().size());
  for (std::size_t i = 0; i < env.access_points().size(); ++i) {
    fields_.emplace_back(config_.multipath_seed, static_cast<int>(i),
                         config_.multipath_amplitude_db);
  }
}

double Propagation::free_space_rssi_dbm(std::size_t ap_index,
                                        geom::Vec2 rx) const {
  const AccessPoint& ap = env_->access_points().at(ap_index);
  const double d = std::max(geom::distance(ap.position, rx),
                            config_.reference_distance_ft);
  return ap.tx_power_dbm -
         10.0 * ap.path_loss_exponent *
             std::log10(d / config_.reference_distance_ft);
}

double Propagation::mean_rssi_dbm(std::size_t ap_index, geom::Vec2 rx) const {
  const AccessPoint& ap = env_->access_points().at(ap_index);
  double rssi = free_space_rssi_dbm(ap_index, rx);
  rssi -= env_->wall_attenuation_db(ap.position, rx,
                                    config_.wall_attenuation_cap_db);
  if (config_.multipath_amplitude_db > 0.0) {
    rssi += fields_[ap_index].bias_db(rx);
  }
  return rssi;
}

}  // namespace loctk::radio

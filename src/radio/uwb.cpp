#include "radio/uwb.hpp"

#include <algorithm>

namespace loctk::radio {

UwbRanging::UwbRanging(const Environment& env, UwbConfig config,
                       std::uint64_t seed)
    : env_(&env), config_(config), rng_(seed) {}

std::vector<UwbRange> UwbRanging::measure(geom::Vec2 pos) {
  std::vector<UwbRange> out;
  out.reserve(env_->access_points().size());
  for (const AccessPoint& ap : env_->access_points()) {
    const double true_dist = geom::distance(ap.position, pos);
    if (true_dist > config_.max_range_ft) continue;
    if (!rng_.bernoulli(config_.detection_probability)) continue;

    const int walls = env_->walls_crossed(ap.position, pos);
    const bool nlos = walls > 0;
    double range = true_dist;
    double sigma = config_.range_noise_sigma_ft;
    if (nlos) {
      // NLOS: the first detectable path is longer; bias grows with
      // the obstruction count and its magnitude jitters.
      const double bias =
          config_.nlos_bias_per_wall_ft * static_cast<double>(walls);
      range += std::abs(rng_.normal(bias, bias * 0.5));
      sigma *= config_.nlos_noise_factor;
    }
    range += rng_.normal(0.0, sigma);
    range = std::max(0.0, range);

    out.push_back({ap.bssid, ap.position, range, nlos});
  }
  return out;
}

std::vector<UwbRange> UwbRanging::measure_rounds(geom::Vec2 pos,
                                                 int rounds) {
  std::vector<UwbRange> out;
  for (int r = 0; r < std::max(0, rounds); ++r) {
    const std::vector<UwbRange> round = measure(pos);
    out.insert(out.end(), round.begin(), round.end());
  }
  return out;
}

}  // namespace loctk::radio

#include "radio/environment.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace loctk::radio {

std::string synthetic_bssid(int index) {
  // Two index bytes: campus-scale sites deploy >256 APs, and a masked
  // single byte would silently alias their BSSIDs. Byte-identical to
  // the historical one-byte form for index < 256.
  const unsigned u = static_cast<unsigned>(index) & 0xffffu;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "00:17:AB:00:%02X:%02X", u >> 8,
                u & 0xffu);
  return buf;
}

const AccessPoint* Environment::find_by_bssid(const std::string& bssid) const {
  const auto it = std::find_if(
      aps_.begin(), aps_.end(),
      [&](const AccessPoint& ap) { return ap.bssid == bssid; });
  return it == aps_.end() ? nullptr : &*it;
}

const AccessPoint* Environment::find_by_name(const std::string& name) const {
  const auto it =
      std::find_if(aps_.begin(), aps_.end(),
                   [&](const AccessPoint& ap) { return ap.name == name; });
  return it == aps_.end() ? nullptr : &*it;
}

int Environment::walls_crossed(geom::Vec2 a, geom::Vec2 b) const {
  const geom::Segment path{a, b};
  int count = 0;
  for (const Wall& w : walls_) {
    if (geom::segments_intersect(path, w.segment)) ++count;
  }
  return count;
}

double Environment::wall_attenuation_db(geom::Vec2 a, geom::Vec2 b,
                                        double cap_db) const {
  const geom::Segment path{a, b};
  double total = 0.0;
  for (const Wall& w : walls_) {
    if (geom::segments_intersect(path, w.segment)) {
      total += w.attenuation_db;
    }
  }
  return std::min(total, cap_db);
}

namespace {

AccessPoint make_ap(int index, std::string name, geom::Vec2 pos) {
  AccessPoint ap;
  ap.bssid = synthetic_bssid(index);
  ap.name = std::move(name);
  ap.position = pos;
  ap.tx_power_dbm = -28.0;
  ap.path_loss_exponent = 3.0;
  ap.channel = 1 + (index * 5) % 11;  // spread over 1/6/11-style plan
  return ap;
}

void add_interior_walls(Environment& env) {
  // A plausible single-family layout for the 50x40 footprint:
  // two bedrooms along the top, living room bottom-left, kitchen
  // bottom-right, hallway in between. Doorways are the gaps.
  auto wall = [&](double x0, double y0, double x1, double y1,
                  double att = 3.0) {
    env.add_wall({{{x0, y0}, {x1, y1}}, att, "drywall"});
  };
  // Horizontal partition at y = 22 (leaving door gaps).
  wall(0, 22, 14, 22);
  wall(20, 22, 33, 22);
  wall(39, 22, 50, 22);
  // Vertical wall between the two bedrooms, door near the hallway.
  wall(25, 28, 25, 40);
  // Living / kitchen divider, door gap in the middle.
  wall(30, 0, 30, 9);
  wall(30, 15, 30, 22);
  // Closet nook in the top-left bedroom.
  wall(0, 34, 6, 34);
  wall(6, 34, 6, 40);
}

void add_perimeter(Environment& env, double att = 10.0) {
  const geom::Rect fp = env.footprint();
  const auto c0 = fp.corner(0);
  const auto c1 = fp.corner(1);
  const auto c2 = fp.corner(2);
  const auto c3 = fp.corner(3);
  env.add_wall({{c0, c1}, att, "brick"});
  env.add_wall({{c1, c2}, att, "brick"});
  env.add_wall({{c2, c3}, att, "brick"});
  env.add_wall({{c3, c0}, att, "brick"});
}

}  // namespace

Environment make_paper_house() { return make_paper_house_with_aps(4); }

Environment make_paper_house_with_aps(int ap_count) {
  ap_count = std::clamp(ap_count, 1, 12);
  Environment env(geom::Rect::sized(50.0, 40.0));
  add_interior_walls(env);

  // Candidate AP spots: the four corners first (the paper's layout),
  // then wall midpoints and the center — each pulled inside so that a
  // receiver can never be at distance zero.
  const geom::Vec2 spots[] = {
      {2, 2},  {48, 2},  {48, 38}, {2, 38},   // corners A..D
      {25, 2}, {48, 20}, {25, 38}, {2, 20},   // wall midpoints
      {25, 20},                               // center
      {12, 2}, {38, 38}, {12, 38},            // extras
  };
  const char* names = "ABCDEFGHIJKL";
  for (int i = 0; i < ap_count; ++i) {
    env.add_access_point(
        make_ap(i, std::string(1, names[i]), spots[i]));
  }
  return env;
}

Environment make_office_floor(int ap_count) {
  ap_count = std::clamp(ap_count, 1, 16);
  Environment env(geom::Rect::sized(120.0, 80.0));
  add_perimeter(env, 12.0);

  // Double-loaded corridor: offices on both sides of a hallway at
  // y in [36, 44]; office partitions every 15 ft with door gaps.
  auto wall = [&](double x0, double y0, double x1, double y1) {
    env.add_wall({{{x0, y0}, {x1, y1}}, 4.0, "partition"});
  };
  for (double y : {36.0, 44.0}) {
    for (double x = 0.0; x < 120.0; x += 20.0) {
      wall(x, y, x + 16.0, y);  // 4 ft door gap per bay
    }
  }
  for (double x = 15.0; x < 120.0; x += 15.0) {
    wall(x, 0, x, 30);
    wall(x, 50, x, 80);
  }

  for (int i = 0; i < ap_count; ++i) {
    // Zig-zag down the corridor.
    const double t = ap_count > 1
                         ? static_cast<double>(i) /
                               static_cast<double>(ap_count - 1)
                         : 0.5;
    const double x = 8.0 + t * 104.0;
    const double y = (i % 2 == 0) ? 38.0 : 42.0;
    env.add_access_point(make_ap(i, "AP" + std::to_string(i), {x, y}));
  }
  return env;
}

}  // namespace loctk::radio

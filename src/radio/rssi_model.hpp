#pragma once

/// \file rssi_model.hpp
/// The abstract mean-RSSI field a scanner samples from.
///
/// `Scanner` needs, per access point: identity (BSSID/channel) and
/// the deterministic mean received power at a position. Single-floor
/// sites implement this with `Propagation`; multi-floor buildings
/// with `FloorView` (which adds inter-floor attenuation). Everything
/// stochastic (shadowing, fading, dropouts) stays in the scanner.

#include <cstddef>

#include "geom/vec2.hpp"
#include "radio/access_point.hpp"

namespace loctk::radio {

/// Deterministic per-AP mean signal field.
class RssiModel {
 public:
  virtual ~RssiModel() = default;

  /// Number of access points audible anywhere in this model.
  virtual std::size_t ap_count() const = 0;

  /// Static description of AP `i` (i < ap_count()).
  virtual const AccessPoint& ap(std::size_t i) const = 0;

  /// Mean received power (dBm) from AP `i` at receiver position `rx`.
  virtual double mean_rssi_dbm(std::size_t i, geom::Vec2 rx) const = 0;
};

}  // namespace loctk::radio

#include "radio/scanner.hpp"

#include <algorithm>
#include <cmath>

namespace loctk::radio {

std::optional<double> ScanRecord::rssi_of(const std::string& bssid) const {
  const auto it = std::find_if(
      samples.begin(), samples.end(),
      [&](const ScanSample& s) { return s.bssid == bssid; });
  if (it == samples.end()) return std::nullopt;
  return it->rssi_dbm;
}

Scanner::Scanner(const RssiModel& model, ChannelConfig config,
                 std::uint64_t seed)
    : model_(&model), config_(config), rng_(seed) {
  reset_session();
}

void Scanner::reset_session() {
  shadowing_.clear();
  const std::size_t n_aps = model_->ap_count();
  shadowing_.reserve(n_aps);
  for (std::size_t i = 0; i < n_aps; ++i) {
    shadowing_.emplace_back(config_.shadowing_sigma_db,
                            config_.shadowing_rho, rng_);
  }
  clock_s_ = 0.0;
}

ScanRecord Scanner::scan_at(geom::Vec2 pos) {
  ScanRecord record;
  record.timestamp_s = clock_s_;
  const std::size_t n_aps = model_->ap_count();
  record.samples.reserve(n_aps);

  for (std::size_t i = 0; i < n_aps; ++i) {
    const AccessPoint& ap = model_->ap(i);
    const double mean = model_->mean_rssi_dbm(i, pos);
    const double shadow = shadowing_[i].next(rng_);
    const double fast = rng_.normal(0.0, config_.fast_fading_sigma_db);
    double rssi = mean + shadow + fast + config_.device_offset_db;

    if (config_.body_loss_db > 0.0) {
      // Loss ramps from 0 (facing the AP) to the full body loss (AP
      // directly behind): (1 - cos(angle)) / 2.
      const geom::Vec2 to_ap = ap.position - pos;
      if (to_ap.norm2() > 0.0) {
        const double ap_bearing = std::atan2(to_ap.y, to_ap.x);
        const double rel = ap_bearing - heading_rad_;
        rssi -= config_.body_loss_db * (1.0 - std::cos(rel)) * 0.5;
      }
    }

    // Dropout: probability of hearing the AP ramps from 1 to 0 as the
    // *instantaneous* power falls through the sensitivity window.
    const double margin = rssi - config_.sensitivity_dbm;
    double p_heard = 1.0;
    if (config_.dropout_softness_db > 0.0) {
      p_heard = std::clamp(
          0.5 + margin / (2.0 * config_.dropout_softness_db), 0.0, 1.0);
    } else if (margin < 0.0) {
      p_heard = 0.0;
    }
    if (!rng_.bernoulli(p_heard)) continue;

    if (config_.quantize_dbm) rssi = std::round(rssi);
    record.samples.push_back({ap.bssid, rssi, ap.channel});
  }

  clock_s_ += config_.scan_interval_s;
  return record;
}

std::vector<ScanRecord> Scanner::collect(geom::Vec2 pos, int n) {
  std::vector<ScanRecord> out;
  out.reserve(static_cast<std::size_t>(std::max(0, n)));
  for (int i = 0; i < n; ++i) out.push_back(scan_at(pos));
  return out;
}

}  // namespace loctk::radio

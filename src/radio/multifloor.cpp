#include "radio/multifloor.hpp"

#include <cmath>
#include <set>
#include <stdexcept>

namespace loctk::radio {

void Building::add_floor(Environment env) {
  // BSSIDs must be building-unique or fingerprints are ambiguous.
  std::set<std::string> seen;
  for (const auto& floor : floors_) {
    for (const AccessPoint& ap : floor->access_points()) {
      seen.insert(ap.bssid);
    }
  }
  for (const AccessPoint& ap : env.access_points()) {
    if (!seen.insert(ap.bssid).second) {
      throw std::invalid_argument(
          "Building::add_floor: duplicate BSSID across floors: " +
          ap.bssid);
    }
  }

  floors_.push_back(std::make_unique<Environment>(std::move(env)));
  // Propagation per floor; vary the multipath seed per floor so the
  // stacked copies do not share bias fields.
  PropagationConfig pc = propagation_config_;
  pc.multipath_seed += floors_.size() * 0x9e37;
  props_.push_back(std::make_unique<Propagation>(*floors_.back(), pc));

  const std::size_t f = floors_.size() - 1;
  for (std::size_t i = 0; i < floors_.back()->access_points().size();
       ++i) {
    flat_.emplace_back(f, i);
  }
}

std::size_t Building::total_ap_count() const { return flat_.size(); }

std::size_t Building::ap_floor(std::size_t i) const {
  return flat_.at(i).first;
}

const AccessPoint& FloorView::ap(std::size_t i) const {
  const auto [f, idx] = building_->flat_.at(i);
  return building_->floors_[f]->access_points()[idx];
}

double FloorView::mean_rssi_dbm(std::size_t i, geom::Vec2 rx) const {
  const auto [f, idx] = building_->flat_.at(i);
  // Same-floor physics from that floor's propagation; cross-floor
  // paths additionally lose one slab per floor crossed. Wall effects
  // of intermediate floors are ignored (the slab dominates).
  const double same_floor =
      building_->props_[f]->mean_rssi_dbm(idx, rx);
  const double crossings = std::abs(static_cast<double>(f) -
                                    static_cast<double>(rx_floor_));
  return same_floor - crossings * building_->floor_attenuation_db_;
}

std::unique_ptr<Building> make_office_building(
    int floors, double floor_attenuation_db) {
  auto building = std::make_unique<Building>(floor_attenuation_db);
  int global_ap = 0;
  for (int f = 0; f < floors; ++f) {
    Environment floor = make_paper_house();
    // Re-identify the APs so BSSIDs are building-unique and names
    // carry the floor.
    Environment renamed(floor.footprint());
    for (const Wall& w : floor.walls()) renamed.add_wall(w);
    for (AccessPoint ap : floor.access_points()) {
      ap.bssid = synthetic_bssid(global_ap++);
      ap.name = "F" + std::to_string(f) + ap.name;
      renamed.add_access_point(std::move(ap));
    }
    building->add_floor(std::move(renamed));
  }
  return building;
}

}  // namespace loctk::radio

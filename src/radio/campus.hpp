#pragma once

/// \file campus.hpp
/// Multi-building campuses: the cardinality regime production serves.
///
/// The paper's evaluation lives in one 50x40 ft house with 4 APs; a
/// production deployment spans several buildings of several floors,
/// hundreds of rooms, and a BSSID universe in the thousands. `Campus`
/// models that: a row of `Building`s laid out in one global
/// coordinate frame, each floor a generated office plate (perimeter +
/// room-grid walls with door gaps, APs scattered per floor), with
/// per-floor slab attenuation inside a building and an extra
/// inter-building facade loss between them. `CampusFloorView` exposes
/// what a receiver standing on one (building, floor) hears from every
/// AP on campus as an `RssiModel`, so the ordinary `Scanner`, survey,
/// and training machinery work unchanged — just three orders of
/// magnitude bigger than the paper house.

#include <cstdint>
#include <memory>
#include <vector>

#include "radio/multifloor.hpp"

namespace loctk::radio {

/// Declarative shape of a generated campus.
struct CampusSpec {
  int buildings = 2;
  int floors_per_building = 3;
  /// Per-floor footprint (feet).
  double floor_width_ft = 240.0;
  double floor_depth_ft = 150.0;
  /// Interior room grid per floor (rooms_per_floor = rooms_x * rooms_y).
  int rooms_x = 8;
  int rooms_y = 5;
  /// APs deployed per floor. The default sizes the stock campus past
  /// the 1000-AP mark (2 buildings x 3 floors x 170 = 1020).
  int aps_per_floor = 170;
  /// Slab loss per floor crossed within a building (dB).
  double floor_attenuation_db = 18.0;
  /// Free-space gap between adjacent building facades (feet).
  double building_gap_ft = 60.0;
  /// Extra loss charged on any path crossing between buildings (two
  /// exterior facades plus whatever sits in the gap), in dB.
  double inter_building_loss_db = 28.0;
  /// Seed for AP placement (site-specific, not per-run).
  std::uint64_t seed = 0xCA4715;

  int total_floors() const { return buildings * floors_per_building; }
  int total_aps() const { return total_floors() * aps_per_floor; }
  int rooms_per_floor() const { return rooms_x * rooms_y; }

  /// Global footprint building `b` would occupy — available without
  /// materializing the campus (fleet factories plan device paths from
  /// the spec alone).
  geom::Rect building_footprint(int b) const {
    const double x0 = b * (floor_width_ft + building_gap_ft);
    return {{x0, 0.0}, {x0 + floor_width_ft, floor_depth_ft}};
  }
};

/// A row of multi-floor buildings sharing one global coordinate
/// frame: building b occupies x in [b*(width+gap), ...+width), y in
/// [0, depth]. Walls, AP positions, room centroids, and receiver
/// positions are all global, so a training database spanning the
/// whole campus needs no per-building coordinate translation.
class Campus {
 public:
  /// Use make_campus(); public for emplace.
  explicit Campus(CampusSpec spec);

  Campus(const Campus&) = delete;
  Campus& operator=(const Campus&) = delete;

  const CampusSpec& spec() const { return spec_; }
  std::size_t building_count() const { return buildings_.size(); }
  std::size_t floors_per_building() const {
    return static_cast<std::size_t>(spec_.floors_per_building);
  }
  const Building& building(std::size_t b) const { return *buildings_.at(b); }

  /// Global footprint of building `b` (all its floors share it).
  const geom::Rect& footprint(std::size_t b) const {
    return footprints_.at(b);
  }

  /// Flat floor index over the whole campus, building-major.
  std::size_t floor_count() const {
    return building_count() * floors_per_building();
  }
  std::size_t flat_floor(std::size_t building, std::size_t floor) const {
    return building * floors_per_building() + floor;
  }
  std::size_t building_of(std::size_t flat) const {
    return flat / floors_per_building();
  }
  std::size_t floor_of(std::size_t flat) const {
    return flat % floors_per_building();
  }

  /// Total APs across every building and floor.
  std::size_t total_ap_count() const;

  /// Room centroids of one building's floor plate (global
  /// coordinates; identical for every floor of that building) — the
  /// canonical survey map for place-grained training.
  std::vector<geom::Vec2> room_centers(std::size_t building) const;

 private:
  CampusSpec spec_;
  std::vector<std::unique_ptr<Building>> buildings_;
  std::vector<geom::Rect> footprints_;
};

/// What a receiver on (building, floor) hears from every AP on
/// campus: same-building APs through the `FloorView` physics (slab
/// loss per floor crossed), other buildings' APs through their own
/// building's propagation plus the inter-building facade loss.
/// AP indices are campus-global, building-major then floor-major, so
/// index i is the AP with BSSID synthetic_bssid(i).
class CampusFloorView : public RssiModel {
 public:
  CampusFloorView(const Campus& campus, std::size_t building,
                  std::size_t floor);

  std::size_t ap_count() const override;
  const AccessPoint& ap(std::size_t i) const override;
  double mean_rssi_dbm(std::size_t i, geom::Vec2 rx) const override;

  std::size_t rx_building() const { return building_; }
  std::size_t rx_floor() const { return floor_; }

 private:
  const Campus* campus_;  // non-owning
  std::size_t building_ = 0;
  std::size_t floor_ = 0;
  /// One per building, each already pinned to the receiver's floor
  /// level (floor heights are assumed equal across buildings).
  std::vector<FloorView> views_;
  /// Global AP index -> first global index of each building (prefix
  /// sums), so lookup is a small upper_bound.
  std::vector<std::size_t> building_base_;
};

/// Generates the campus described by `spec`: per floor a perimeter of
/// exterior walls, a rooms_x x rooms_y partition grid with door gaps,
/// and `aps_per_floor` APs scattered deterministically from
/// `spec.seed`. BSSIDs are campus-unique (`synthetic_bssid(global)`),
/// names carry the building/floor ("B1F2-AP17").
std::unique_ptr<Campus> make_campus(const CampusSpec& spec = {});

}  // namespace loctk::radio

#pragma once

/// \file propagation.hpp
/// Deterministic mean-RSSI prediction: the simulator's ground truth.
///
/// mean_rssi = p0 − 10·n·log10(d/d0) − WAF(walls) + multipath(pos)
///
/// The first two terms are the standard log-distance path-loss model;
/// WAF is the RADAR-style wall attenuation; the multipath term is a
/// smooth, static, AP-specific spatial bias field modelling the
/// reflection/scattering structure of the site (paper §6 item 1 lists
/// exactly these unmodelled factors). The field is what separates
/// fingerprinting from pure distance inversion in reality, so the
/// substitute testbed must include it for the paper's comparison to
/// come out the right way.

#include <cstdint>
#include <vector>

#include "geom/vec2.hpp"
#include "radio/access_point.hpp"
#include "radio/environment.hpp"
#include "radio/rssi_model.hpp"

namespace loctk::radio {

/// Static spatial bias field: a small sum of random plane waves,
/// deterministic in (seed, AP index). Smooth on the scale of a few
/// feet, zero-mean over large areas, amplitude ~amplitude_db.
class MultipathField {
 public:
  /// `components` plane waves with wavelengths 4..25 ft.
  MultipathField(std::uint64_t seed, int ap_index, double amplitude_db,
                 int components = 6);

  /// Bias in dB at a world position.
  double bias_db(geom::Vec2 pos) const;

  double amplitude_db() const { return amplitude_; }

 private:
  struct Wave {
    geom::Vec2 k;   // spatial frequency (radians per foot)
    double phase;
    double amp;
  };
  std::vector<Wave> waves_;
  double amplitude_;
};

/// Knobs of the deterministic part of the channel.
struct PropagationConfig {
  double reference_distance_ft = 1.0;  ///< d0
  double wall_attenuation_cap_db = 15.0;
  /// Peak amplitude of the per-AP multipath bias field (0 disables).
  double multipath_amplitude_db = 3.5;
  /// Seed for the multipath fields (site-specific, not per-run).
  std::uint64_t multipath_seed = 0xA0B1C2D3;
};

/// Precomputed mean-RSSI predictor for one environment.
class Propagation : public RssiModel {
 public:
  /// `env` is borrowed and must outlive the Propagation.
  Propagation(const Environment& env, PropagationConfig config = {});
  /// Binding a temporary environment would dangle immediately.
  Propagation(Environment&&, PropagationConfig = {}) = delete;

  /// RssiModel interface.
  std::size_t ap_count() const override {
    return env_->access_points().size();
  }
  const AccessPoint& ap(std::size_t i) const override {
    return env_->access_points().at(i);
  }
  /// Mean received power (dBm) from AP #`ap_index` at `rx`.
  double mean_rssi_dbm(std::size_t ap_index, geom::Vec2 rx) const override;

  /// Distance-only part (no walls, no multipath): what a perfect
  /// inverse model could recover.
  double free_space_rssi_dbm(std::size_t ap_index, geom::Vec2 rx) const;

  const Environment& environment() const { return *env_; }
  const PropagationConfig& config() const { return config_; }

 private:
  const Environment* env_;  // non-owning; environment outlives this
  PropagationConfig config_;
  std::vector<MultipathField> fields_;
};

}  // namespace loctk::radio

#include "radio/campus.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace loctk::radio {

namespace {

/// splitmix64: deterministic placement stream, site-specific.
std::uint64_t mix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double uniform(std::uint64_t& state, double lo, double hi) {
  const double u =
      static_cast<double>(mix64(state) >> 11) * 0x1.0p-53;  // [0, 1)
  return lo + u * (hi - lo);
}

/// One office floor plate inside the (global-coordinate) footprint:
/// brick perimeter plus a rooms_x x rooms_y partition grid with a
/// door gap per shared wall, so paths between rooms cross real walls
/// (per-room WAF) without sealing any room off.
Environment make_floor_plate(const CampusSpec& spec, geom::Rect fp) {
  Environment env(fp);
  const auto c0 = fp.corner(0);
  const auto c1 = fp.corner(1);
  const auto c2 = fp.corner(2);
  const auto c3 = fp.corner(3);
  env.add_wall({{c0, c1}, 12.0, "brick"});
  env.add_wall({{c1, c2}, 12.0, "brick"});
  env.add_wall({{c2, c3}, 12.0, "brick"});
  env.add_wall({{c3, c0}, 12.0, "brick"});

  const double room_w = fp.width() / spec.rooms_x;
  const double room_h = fp.height() / spec.rooms_y;
  auto wall = [&](double x0, double y0, double x1, double y1) {
    env.add_wall({{{x0, y0}, {x1, y1}}, 4.0, "partition"});
  };
  // Vertical partitions: a door gap at the far end of each room edge.
  const double door_v = std::min(4.0, room_h * 0.25);
  for (int i = 1; i < spec.rooms_x; ++i) {
    const double x = fp.min.x + i * room_w;
    for (int j = 0; j < spec.rooms_y; ++j) {
      const double y0 = fp.min.y + j * room_h;
      wall(x, y0, x, y0 + room_h - door_v);
    }
  }
  // Horizontal partitions, same door-per-edge pattern.
  const double door_h = std::min(4.0, room_w * 0.25);
  for (int j = 1; j < spec.rooms_y; ++j) {
    const double y = fp.min.y + j * room_h;
    for (int i = 0; i < spec.rooms_x; ++i) {
      const double x0 = fp.min.x + i * room_w;
      wall(x0, y, x0 + room_w - door_h, y);
    }
  }
  return env;
}

}  // namespace

Campus::Campus(CampusSpec spec) : spec_(spec) {
  if (spec_.buildings < 1 || spec_.floors_per_building < 1 ||
      spec_.rooms_x < 1 || spec_.rooms_y < 1 || spec_.aps_per_floor < 1) {
    throw std::invalid_argument(
        "CampusSpec: buildings/floors/rooms/aps must all be >= 1");
  }
  if (spec_.total_aps() > 0xffff) {
    throw std::invalid_argument(
        "CampusSpec: total AP count exceeds the synthetic BSSID space");
  }

  int global_ap = 0;
  for (int b = 0; b < spec_.buildings; ++b) {
    const geom::Rect fp = spec_.building_footprint(b);
    footprints_.push_back(fp);

    // Per-building multipath seed so stacked buildings do not share
    // bias fields even where AP indices coincide.
    PropagationConfig pc;
    pc.multipath_seed = spec_.seed ^ (0xB00Dull * (b + 1));
    auto building = std::make_unique<Building>(spec_.floor_attenuation_db, pc);

    for (int f = 0; f < spec_.floors_per_building; ++f) {
      Environment floor = make_floor_plate(spec_, fp);
      // AP placement stream is per (building, floor): inserting a
      // floor elsewhere cannot reshuffle this one's layout.
      std::uint64_t rng = spec_.seed ^ (0x517Eull + 8191ull * b + 131ull * f);
      const geom::Rect inset = fp.inflated(-2.0);
      for (int a = 0; a < spec_.aps_per_floor; ++a) {
        AccessPoint ap;
        ap.bssid = synthetic_bssid(global_ap);
        ap.name = "B" + std::to_string(b) + "F" + std::to_string(f) +
                  "-AP" + std::to_string(a);
        ap.position = {uniform(rng, inset.min.x, inset.max.x),
                       uniform(rng, inset.min.y, inset.max.y)};
        ap.tx_power_dbm = -28.0;
        ap.path_loss_exponent = 3.0;
        ap.channel = 1 + (global_ap * 5) % 11;
        floor.add_access_point(std::move(ap));
        ++global_ap;
      }
      building->add_floor(std::move(floor));
    }
    buildings_.push_back(std::move(building));
  }
}

std::size_t Campus::total_ap_count() const {
  std::size_t total = 0;
  for (const auto& b : buildings_) total += b->total_ap_count();
  return total;
}

std::vector<geom::Vec2> Campus::room_centers(std::size_t building) const {
  const geom::Rect fp = footprint(building);
  const double room_w = fp.width() / spec_.rooms_x;
  const double room_h = fp.height() / spec_.rooms_y;
  std::vector<geom::Vec2> centers;
  centers.reserve(static_cast<std::size_t>(spec_.rooms_per_floor()));
  for (int j = 0; j < spec_.rooms_y; ++j) {
    for (int i = 0; i < spec_.rooms_x; ++i) {
      centers.push_back({fp.min.x + (i + 0.5) * room_w,
                         fp.min.y + (j + 0.5) * room_h});
    }
  }
  return centers;
}

CampusFloorView::CampusFloorView(const Campus& campus, std::size_t building,
                                 std::size_t floor)
    : campus_(&campus), building_(building), floor_(floor) {
  if (building >= campus.building_count() ||
      floor >= campus.floors_per_building()) {
    throw std::out_of_range("CampusFloorView: building/floor out of range");
  }
  std::size_t base = 0;
  for (std::size_t b = 0; b < campus.building_count(); ++b) {
    building_base_.push_back(base);
    base += campus.building(b).total_ap_count();
    // Floor heights are assumed equal across buildings, so the
    // receiver sits at the same level in every building's frame.
    views_.emplace_back(campus.building(b), floor);
  }
  building_base_.push_back(base);
}

std::size_t CampusFloorView::ap_count() const {
  return building_base_.back();
}

const AccessPoint& CampusFloorView::ap(std::size_t i) const {
  const auto it = std::upper_bound(building_base_.begin(),
                                   building_base_.end(), i);
  const std::size_t b =
      static_cast<std::size_t>(it - building_base_.begin()) - 1;
  return views_.at(b).ap(i - building_base_[b]);
}

double CampusFloorView::mean_rssi_dbm(std::size_t i, geom::Vec2 rx) const {
  const auto it = std::upper_bound(building_base_.begin(),
                                   building_base_.end(), i);
  const std::size_t b =
      static_cast<std::size_t>(it - building_base_.begin()) - 1;
  double dbm = views_.at(b).mean_rssi_dbm(i - building_base_[b], rx);
  if (b != building_) dbm -= campus_->spec().inter_building_loss_db;
  return dbm;
}

std::unique_ptr<Campus> make_campus(const CampusSpec& spec) {
  return std::make_unique<Campus>(spec);
}

}  // namespace loctk::radio

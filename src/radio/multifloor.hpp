#pragma once

/// \file multifloor.hpp
/// Multi-floor buildings: the deployment shape real toolkits meet.
///
/// The paper's experiment house is a single floor, but the systems it
/// surveys (and any campus deployment) span floors: a receiver hears
/// APs from adjacent floors through the slab, attenuated by roughly
/// 15-25 dB per concrete floor. We model a building as a stack of
/// `Environment`s sharing a footprint; `FloorView` exposes the mean
/// field a receiver standing on one floor experiences — every AP in
/// the building, with `|Δfloor| ×` slab attenuation added — as an
/// `RssiModel`, so the ordinary `Scanner` works unchanged.

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "radio/environment.hpp"
#include "radio/propagation.hpp"
#include "radio/rssi_model.hpp"

namespace loctk::radio {

/// A stack of floors. Floors are indexed bottom-up from 0.
class Building {
 public:
  /// `floor_attenuation_db` is the slab loss per floor crossed.
  explicit Building(double floor_attenuation_db = 18.0,
                    PropagationConfig propagation_config = {})
      : floor_attenuation_db_(floor_attenuation_db),
        propagation_config_(propagation_config) {}

  Building(const Building&) = delete;
  Building& operator=(const Building&) = delete;

  /// Adds a floor (bottom-up). AP BSSIDs must be unique across the
  /// whole building (throws std::invalid_argument otherwise).
  void add_floor(Environment env);

  std::size_t floor_count() const { return floors_.size(); }
  const Environment& floor(std::size_t f) const { return *floors_.at(f); }
  double floor_attenuation_db() const { return floor_attenuation_db_; }

  /// Total APs across all floors.
  std::size_t total_ap_count() const;

  /// Floor index of the building-wide AP #`i` (flattened bottom-up).
  std::size_t ap_floor(std::size_t i) const;

  /// Propagation model of floor `f` (same-floor physics).
  const Propagation& propagation(std::size_t f) const {
    return *props_.at(f);
  }

 private:
  friend class FloorView;
  double floor_attenuation_db_;
  PropagationConfig propagation_config_;
  // unique_ptr keeps Environment addresses stable for Propagation.
  std::vector<std::unique_ptr<Environment>> floors_;
  std::vector<std::unique_ptr<Propagation>> props_;
  /// Flattened (floor, index-within-floor) per building-wide AP.
  std::vector<std::pair<std::size_t, std::size_t>> flat_;
};

/// The mean field seen by a receiver standing on floor `rx_floor`:
/// all APs in the building, cross-floor ones attenuated per slab.
class FloorView : public RssiModel {
 public:
  FloorView(const Building& building, std::size_t rx_floor)
      : building_(&building), rx_floor_(rx_floor) {}

  std::size_t ap_count() const override {
    return building_->total_ap_count();
  }
  const AccessPoint& ap(std::size_t i) const override;
  double mean_rssi_dbm(std::size_t i, geom::Vec2 rx) const override;

  std::size_t rx_floor() const { return rx_floor_; }

 private:
  const Building* building_;  // non-owning
  std::size_t rx_floor_;
};

/// A canonical test building: `floors` copies of the paper house
/// stacked up, each with 4 corner APs carrying globally unique BSSIDs
/// (names "F<floor><letter>", e.g. "F2C").
std::unique_ptr<Building> make_office_building(
    int floors = 3, double floor_attenuation_db = 18.0);

}  // namespace loctk::radio

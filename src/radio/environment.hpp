#pragma once

/// \file environment.hpp
/// The physical site: footprint, walls, and deployed access points.
///
/// This is the substitute for the paper's experiment house (§5.1):
/// a 50 ft x 40 ft dwelling with four APs (A, B, C, D) at the
/// corners. Walls matter because RF attenuates through them — the
/// RADAR wall-attenuation factor (WAF) — which is a large part of why
/// a pure distance model mispredicts and fingerprinting wins.

#include <optional>
#include <string>
#include <vector>

#include "geom/rect.hpp"
#include "geom/segment.hpp"
#include "geom/vec2.hpp"
#include "radio/access_point.hpp"

namespace loctk::radio {

/// A wall segment with its RF attenuation.
struct Wall {
  geom::Segment segment;
  /// Signal loss when the direct path crosses this wall, in dB.
  /// RADAR measured ~3.1 dB for office partitions; masonry is higher.
  double attenuation_db = 3.0;
  std::string material = "drywall";

  friend bool operator==(const Wall&, const Wall&) = default;
};

/// Site model: bounding footprint, wall list, AP list.
class Environment {
 public:
  Environment() = default;
  explicit Environment(geom::Rect footprint) : footprint_(footprint) {}

  const geom::Rect& footprint() const { return footprint_; }
  void set_footprint(geom::Rect r) { footprint_ = r; }

  const std::vector<Wall>& walls() const { return walls_; }
  void add_wall(Wall w) { walls_.push_back(std::move(w)); }

  const std::vector<AccessPoint>& access_points() const { return aps_; }
  void add_access_point(AccessPoint ap) { aps_.push_back(std::move(ap)); }

  /// AP lookup by BSSID; nullptr when absent.
  const AccessPoint* find_by_bssid(const std::string& bssid) const;
  /// AP lookup by short name; nullptr when absent.
  const AccessPoint* find_by_name(const std::string& name) const;

  /// Number of walls the open segment (a, b) crosses. Endpoints
  /// sitting exactly on a wall count as crossing it.
  int walls_crossed(geom::Vec2 a, geom::Vec2 b) const;

  /// Total attenuation (dB) of the walls crossed by (a, b), capped at
  /// `cap_db` — beyond a few walls diffraction dominates and extra
  /// walls stop adding loss (RADAR models the same saturation).
  double wall_attenuation_db(geom::Vec2 a, geom::Vec2 b,
                             double cap_db = 15.0) const;

 private:
  geom::Rect footprint_;
  std::vector<Wall> walls_;
  std::vector<AccessPoint> aps_;
};

/// The paper's experiment house: 50 ft x 40 ft footprint, origin at
/// one corner, four APs named A..D at the corners (pulled 2 ft inside
/// so no training point is at distance zero), and a handful of
/// interior walls forming rooms and a hallway.
Environment make_paper_house();

/// Same footprint and walls but with `ap_count` access points placed
/// around the perimeter (used by the AP-count ablation). `ap_count`
/// in [1, 12].
Environment make_paper_house_with_aps(int ap_count);

/// A larger synthetic office floor (120 ft x 80 ft, perimeter +
/// corridor walls, `ap_count` APs) for scaling benches.
Environment make_office_floor(int ap_count = 6);

}  // namespace loctk::radio

#pragma once

/// \file access_point.hpp
/// An 802.11b access point as the localization signal source.
///
/// The paper's infrastructure (§3) is ordinary 802.11b APs already
/// deployed in the building; the client only observes their BSSID and
/// received signal strength. Positions are in world feet.

#include <string>

#include "geom/vec2.hpp"

namespace loctk::radio {

/// Static description of one access point.
struct AccessPoint {
  /// MAC-format identifier, the key observed in wi-scan records.
  std::string bssid;
  /// Short human name ("A".."D" in the paper's experiment house).
  std::string name;
  /// Transmitter position in world feet.
  geom::Vec2 position;
  /// Mean received power (dBm) at the reference distance d0 = 1 ft.
  double tx_power_dbm = -28.0;
  /// Path-loss exponent around this transmitter; typical indoor
  /// values are 2.0 .. 4.0 (free space is 2.0).
  double path_loss_exponent = 3.0;
  /// 802.11b channel (cosmetic; recorded in wi-scan files).
  int channel = 6;

  friend bool operator==(const AccessPoint&, const AccessPoint&) = default;
};

/// Canonical BSSID for the i-th synthetic AP: 00:17:AB:00:hh:ii (two
/// index bytes, so synthetic sites stay collision-free through 65535
/// APs; equal to the historical one-byte form for index < 256).
std::string synthetic_bssid(int index);

}  // namespace loctk::radio

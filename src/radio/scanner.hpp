#pragma once

/// \file scanner.hpp
/// The client-side NIC substitute: noisy, quantized, lossy RSSI scans.
///
/// The paper's working phase (§3, Figure 1 steps 5-6) starts with "the
/// system sensed the RF signal strength" via a third-party sniffer.
/// `Scanner` reproduces what such a sniffer reports at a position:
/// per-AP integer dBm readings, corrupted by temporally-correlated
/// shadowing (people moving, doors), fast fading, receiver
/// quantization, and dropouts of weak APs — the "unstableness" the
/// paper calls its largest barrier (§6).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "geom/vec2.hpp"
#include "radio/environment.hpp"
#include "radio/propagation.hpp"
#include "radio/rssi_model.hpp"
#include "stats/rng.hpp"

namespace loctk::radio {

/// Stochastic channel knobs.
struct ChannelConfig {
  /// Slow (shadowing) noise: std-dev in dB and lag-1 correlation
  /// between consecutive scans. RADAR-era measurements put sigma
  /// around 3-5 dB indoors.
  double shadowing_sigma_db = 4.0;
  double shadowing_rho = 0.85;
  /// Fast per-sample fading std-dev in dB (uncorrelated).
  double fast_fading_sigma_db = 1.5;
  /// Below this mean power the AP starts dropping out of scans.
  double sensitivity_dbm = -90.0;
  /// Width (dB) of the ramp from always-heard to never-heard.
  double dropout_softness_db = 4.0;
  /// Round reported values to whole dBm like real NIC drivers.
  bool quantize_dbm = true;
  /// Seconds between consecutive scan records.
  double scan_interval_s = 1.0;
  /// Constant reporting offset of this device's NIC/driver (dB).
  /// Real hardware disagrees by several dB on the same channel; a
  /// database trained with one device and queried with another sees
  /// every reading shifted by the difference (the device-heterogeneity
  /// problem SSD fingerprinting addresses).
  double device_offset_db = 0.0;
  /// Peak body-shadowing loss (dB) when the user's body sits between
  /// the device and the AP (the RADAR "user orientation" effect,
  /// ~5 dB on 2.4 GHz). 0 disables; the loss ramps with the angle
  /// between the user's heading and the AP direction, maximal when
  /// the AP is directly behind the user.
  double body_loss_db = 0.0;
};

/// One AP reading within a scan.
struct ScanSample {
  std::string bssid;
  double rssi_dbm = 0.0;
  int channel = 0;

  friend bool operator==(const ScanSample&, const ScanSample&) = default;
};

/// One scan: everything heard at an instant.
struct ScanRecord {
  double timestamp_s = 0.0;
  std::vector<ScanSample> samples;

  /// Reading for `bssid`, or nullopt if that AP dropped out.
  std::optional<double> rssi_of(const std::string& bssid) const;

  friend bool operator==(const ScanRecord&, const ScanRecord&) = default;
};

/// Simulated wireless scanner. One instance models one receiver
/// session; per-AP shadowing state persists across scans (that is the
/// temporal correlation) until `reset_session()`.
class Scanner {
 public:
  Scanner(const RssiModel& model, ChannelConfig config,
          std::uint64_t seed);

  /// One scan at `pos`; advances the session clock by the scan
  /// interval.
  ScanRecord scan_at(geom::Vec2 pos);

  /// `n` consecutive scans at a fixed position (the paper's training
  /// collection: ~1.5 minutes of samples per point, §6 item 2).
  std::vector<ScanRecord> collect(geom::Vec2 pos, int n);

  /// New shadowing states and clock reset (a fresh visit to the
  /// site). The underlying RNG keeps advancing, so successive
  /// sessions differ.
  void reset_session();

  /// Direction the user is facing (radians, world frame; 0 = +x).
  /// Only matters when `body_loss_db > 0`.
  void set_heading(double radians) { heading_rad_ = radians; }
  double heading() const { return heading_rad_; }

  double clock_s() const { return clock_s_; }
  const ChannelConfig& config() const { return config_; }
  const RssiModel& model() const { return *model_; }

 private:
  const RssiModel* model_;  // non-owning
  ChannelConfig config_;
  stats::Rng rng_;
  std::vector<stats::Ar1Process> shadowing_;  // one per AP
  double clock_s_ = 0.0;
  double heading_rad_ = 0.0;
};

}  // namespace loctk::radio

#pragma once

/// \file uwb.hpp
/// Ultra-wideband time-of-arrival ranging: the paper's §6 item 3.
///
/// "We consider using the Ultra Wide Band (UWB) technology ... the
/// burst duration is so short that in an indoor environment the
/// signals arriving late due to multi-path propagation arrive at
/// discrete intervals, so there is little or no signal loss due to
/// fading, scattering and reflection."
///
/// Concretely that means UWB measures *distance* directly (two-way
/// time of flight) with sub-foot noise, instead of inferring it from
/// a fitted RSSI curve. The residual error sources are small Gaussian
/// timing noise and a positive non-line-of-sight (NLOS) bias when
/// walls force the first detectable path to be longer than the
/// straight line. Anchors reuse the environment's AP positions.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "geom/vec2.hpp"
#include "radio/environment.hpp"
#include "stats/rng.hpp"

namespace loctk::radio {

/// UWB channel knobs. Defaults follow published 802.15.4a-class
/// hardware: ~10-30 cm ranging noise, decimeter-level NLOS bias per
/// obstruction.
struct UwbConfig {
  /// 1-sigma two-way-ranging noise (feet). 0.5 ft ~ 15 cm.
  double range_noise_sigma_ft = 0.5;
  /// Positive bias added per wall on the direct path (feet); NLOS
  /// always lengthens, never shortens, the first path.
  double nlos_bias_per_wall_ft = 1.2;
  /// Extra noise multiplier applied when any wall blocks the path.
  double nlos_noise_factor = 2.0;
  /// Ranging fails beyond this distance (feet).
  double max_range_ft = 150.0;
  /// Probability a ranging exchange completes within range.
  double detection_probability = 0.98;
};

/// One completed ranging exchange.
struct UwbRange {
  std::string anchor_id;   ///< the anchor's BSSID (anchors = the APs)
  geom::Vec2 anchor_pos;
  double range_ft = 0.0;
  bool nlos = false;       ///< ground-truth flag (diagnostics only)

  friend bool operator==(const UwbRange&, const UwbRange&) = default;
};

/// Simulated UWB two-way ranging against the environment's APs.
class UwbRanging {
 public:
  UwbRanging(const Environment& env, UwbConfig config, std::uint64_t seed);

  /// One ranging round: every reachable anchor returns a measurement.
  std::vector<UwbRange> measure(geom::Vec2 pos);

  /// `rounds` consecutive rounds, flattened (more rounds average the
  /// timing noise down at locate time).
  std::vector<UwbRange> measure_rounds(geom::Vec2 pos, int rounds);

  const UwbConfig& config() const { return config_; }

 private:
  const Environment* env_;  // non-owning
  UwbConfig config_;
  stats::Rng rng_;
};

}  // namespace loctk::radio

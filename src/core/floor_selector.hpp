#pragma once

/// \file floor_selector.hpp
/// Floor determination + within-floor localization for buildings.
///
/// With one training database per floor (each surveyed through a
/// `radio::FloorView`, so cross-floor APs appear in it with their
/// slab-attenuated means), floor selection falls out of the paper's
/// own machinery: the floor whose best training point explains the
/// observation with the highest likelihood wins, and the winning
/// floor's locator supplies the in-floor position.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/probabilistic.hpp"
#include "radio/multifloor.hpp"
#include "wiscan/location_map.hpp"

namespace loctk::core {

/// One multi-floor fix.
struct FloorEstimate {
  bool valid = false;
  std::size_t floor = 0;
  /// In-floor estimate from the winning floor's locator.
  LocationEstimate estimate;
  /// Softmax probability of the winning floor vs the others (1.0 when
  /// there is only one floor).
  double floor_confidence = 0.0;
};

/// Selects the floor by per-floor maximum likelihood.
class FloorSelector {
 public:
  /// `databases[f]` is floor f's training database; all must outlive
  /// the selector. Throws std::invalid_argument when empty.
  explicit FloorSelector(
      std::vector<const traindb::TrainingDatabase*> databases,
      ProbabilisticConfig config = {});

  /// Floor + position for one observation.
  FloorEstimate locate(const Observation& obs) const;

  /// Per-floor best log-likelihoods (diagnostics; aligned by floor).
  std::vector<double> floor_scores(const Observation& obs) const;

  std::size_t floor_count() const { return locators_.size(); }

 private:
  std::vector<std::unique_ptr<ProbabilisticLocator>> locators_;
};

/// Surveys every floor of `building` on `map` (the same grid per
/// floor) and returns one training database per floor. Each floor's
/// survey runs through a `FloorView`, so cross-floor APs land in the
/// databases exactly as a real multi-floor survey would record them.
std::vector<traindb::TrainingDatabase> train_building(
    const radio::Building& building, const wiscan::LocationMap& map,
    int scans_per_point, std::uint64_t seed,
    const radio::ChannelConfig& channel = {});

}  // namespace loctk::core

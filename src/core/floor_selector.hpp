#pragma once

/// \file floor_selector.hpp
/// Floor determination + within-floor localization for buildings.
///
/// With one training database per floor (each surveyed through a
/// `radio::FloorView`, so cross-floor APs appear in it with their
/// slab-attenuated means), floor selection falls out of the paper's
/// own machinery: the floor whose best training point explains the
/// observation with the highest likelihood wins, and the winning
/// floor's locator supplies the in-floor position.
///
/// Two correctness details matter at campus cardinality:
///
/// - Per-floor scoring rides the locators' compiled `locate()` path
///   (coarse-to-fine pruning included when the config enables it),
///   never a dense `score_all` sweep per floor.
/// - Floors are compared on a **per-term** basis: each floor's best
///   log-likelihood is divided by the number of scored terms (common
///   APs + missing-AP penalties) behind it. Raw sums are not on a
///   common scale across floors — a floor with a richer AP universe
///   accumulates more penalty terms for the same observation, so the
///   raw comparison systematically favors small universes. Non-finite
///   per-floor scores (a NaN observation reaching the kernels) are
///   rejected explicitly instead of silently corrupting the fold.

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/probabilistic.hpp"
#include "radio/campus.hpp"
#include "radio/multifloor.hpp"
#include "wiscan/location_map.hpp"

namespace loctk::core {

/// One multi-floor fix.
struct FloorEstimate {
  bool valid = false;
  std::size_t floor = 0;
  /// In-floor estimate from the winning floor's locator.
  LocationEstimate estimate;
  /// Softmax probability of the winning floor vs the others (1.0 when
  /// there is only one floor), over the per-term normalized scores.
  double floor_confidence = 0.0;
};

/// Selects the floor by per-floor maximum likelihood.
class FloorSelector {
 public:
  /// `databases[f]` is floor f's training database; all must outlive
  /// the selector. Compiles each floor once. Throws
  /// std::invalid_argument when empty or any entry is null.
  explicit FloorSelector(
      std::vector<const traindb::TrainingDatabase*> databases,
      ProbabilisticConfig config = {});

  /// Shares existing compilations (the serve path keeps one compiled
  /// snapshot per floor shard; selection must not recompile them).
  explicit FloorSelector(
      std::vector<std::shared_ptr<const CompiledDatabase>> compiled,
      ProbabilisticConfig config = {});

  /// Floor + position for one observation.
  FloorEstimate locate(const Observation& obs) const;

  /// Per-floor best log-likelihood per scored term (diagnostics;
  /// aligned by floor). Floors with no valid estimate — no universe
  /// overlap, or a non-finite score — carry -infinity.
  std::vector<double> floor_scores(const Observation& obs) const;

  std::size_t floor_count() const { return locators_.size(); }

  /// The winning floor's locator (for in-floor diagnostics).
  const ProbabilisticLocator& floor_locator(std::size_t f) const {
    return *locators_.at(f);
  }

 private:
  /// Best estimate on floor `f` plus its per-term normalized score;
  /// -infinity (and an invalid estimate) when the floor produced no
  /// finite answer.
  double scored_locate(std::size_t f, const Observation& obs,
                       LocationEstimate* est) const;

  std::vector<std::unique_ptr<ProbabilisticLocator>> locators_;
  /// Per floor: winning-location name -> trained AP count, so the
  /// normalization denominator costs one hash lookup instead of a
  /// point-list scan per fix.
  std::vector<std::unordered_map<std::string, int>> trained_counts_;
};

/// Surveys every floor of `building` on `map` (the same grid per
/// floor) and returns one training database per floor. Each floor's
/// survey runs through a `FloorView`, so cross-floor APs land in the
/// databases exactly as a real multi-floor survey would record them.
std::vector<traindb::TrainingDatabase> train_building(
    const radio::Building& building, const wiscan::LocationMap& map,
    int scans_per_point, std::uint64_t seed,
    const radio::ChannelConfig& channel = {});

/// Surveys every (building, floor) of `campus` at that building's room
/// centers and returns one training database per flat floor index
/// (`Campus::flat_floor` order). Surveys run through
/// `CampusFloorView`s, so cross-floor and cross-building APs appear
/// with their slab/facade-attenuated means. Location names are
/// campus-unique ("B1F2-R17"), so the per-floor databases can also be
/// merged into one campus-wide database.
std::vector<traindb::TrainingDatabase> train_campus(
    const radio::Campus& campus, int scans_per_point, std::uint64_t seed,
    const radio::ChannelConfig& channel = {});

/// Merges per-floor databases (campus-unique location names required)
/// into one database whose universe is the union — the single
/// compilation the flat locators and the candidate pruner race on at
/// campus cardinality.
traindb::TrainingDatabase merge_floor_databases(
    const std::vector<traindb::TrainingDatabase>& floors,
    std::string site_name);

}  // namespace loctk::core

#pragma once

/// \file location_service.hpp
/// The live location service: the paper's §6 item 4 ("implement the
/// new location service, and use the service in our other research
/// projects related to pervasive computing").
///
/// Applications do not batch 90 scans and call locate() — they feed
/// scans as the NIC produces them and ask "where is the client *now*,
/// and which named place is that?" at any moment. `LocationService`
/// owns that loop: a sliding window of recent scans becomes the
/// current observation, a snapshot locator scores it, an optional
/// Kalman layer smooths the track, and subscribers get callbacks when
/// the resolved *place* changes (the paper's intro scenario: forward
/// the incoming call to the recipient's current room).

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/locator.hpp"
#include "core/tracking.hpp"
#include "radio/scanner.hpp"

namespace loctk::core {

struct LocationServiceConfig {
  /// Scans kept in the sliding window (the working-phase dwell; the
  /// paper used ~90 for static tests, live tracking wants far less).
  std::size_t window_scans = 8;
  /// Minimum scans before the service reports anything.
  std::size_t min_scans = 2;
  /// Smooth the position stream with a constant-velocity Kalman
  /// filter.
  bool kalman_smoothing = true;
  KalmanConfig kalman;
  /// A place change is announced only after the new place has been
  /// resolved this many consecutive updates (debounce against cell
  /// flapping at room boundaries).
  int place_debounce = 2;
};

/// Current service output.
struct ServiceFix {
  bool valid = false;
  geom::Vec2 position;
  /// Resolved named place (training-point / location-map name).
  std::string place;
  /// Scans currently in the window.
  std::size_t window_fill = 0;
  /// Non-empty when the fix is running degraded: the locator had no
  /// answer for the current window and the position (if valid) is a
  /// Kalman coast rather than a fresh measurement. The text is the
  /// structured `loctk::Error` behind the degradation.
  std::string degraded_reason;

  bool degraded() const { return !degraded_reason.empty(); }
};

/// Stateful per-client localization session.
class LocationService {
 public:
  /// `locator` must outlive the service.
  LocationService(const Locator& locator,
                  LocationServiceConfig config = {});

  /// Owning form for the direct ingest-to-serve path: the service
  /// shares ownership of the locator, so a caller can build
  /// `load_compiled_database` → locator → service and let the service
  /// be the only live handle.
  LocationService(std::shared_ptr<const Locator> locator,
                  LocationServiceConfig config = {});

  /// Unbound form for the snapshot-serving path: the service owns only
  /// the per-client state (window, Kalman track, debounce) and each
  /// scan supplies the locator via the on_scan(locator, scan) overload
  /// — so the serving layer can hot-swap the site's snapshot between
  /// any two scans without resetting anyone's track. The locator-less
  /// entry points (on_scan(scan), try_locate, locate_batch) throw
  /// std::logic_error on an unbound service.
  explicit LocationService(LocationServiceConfig config);

  /// Feeds one scan; returns the updated fix. Hostile input degrades
  /// instead of corrupting state: non-finite RSSI samples are dropped
  /// before they reach the window (counted in rejected_samples()), and
  /// a window the locator cannot answer coasts on the Kalman track
  /// with `fix.degraded_reason` set.
  ServiceFix on_scan(const radio::ScanRecord& scan);

  /// on_scan against an explicitly supplied locator — the snapshot
  /// form: per-client state lives here, the immutable scoring state
  /// arrives per call. The bound on_scan(scan) is exactly
  /// on_scan(bound locator, scan).
  ServiceFix on_scan(const Locator& locator, const radio::ScanRecord& scan);

  /// One-shot taxonomy-speaking localization of an already-windowed
  /// observation through this service's locator; degenerate inputs
  /// come back as typed kDegenerate errors (see Locator::try_locate).
  /// Stateless with respect to the scan window / Kalman track.
  Result<LocationEstimate> try_locate(const Observation& obs) const;

  /// Non-finite samples dropped by on_scan() so far.
  std::size_t rejected_samples() const { return rejected_samples_; }

  /// Scans fed through on_scan() over the service's lifetime (survives
  /// reset(), like rejected_samples()). The soak harness checks its
  /// fix-count invariants against this instead of trusting the caller
  /// to have counted correctly.
  std::size_t scans_seen() const { return scans_seen_; }

  /// Replays a recorded scan stream through on_scan(), one fix per
  /// scan in order — the testkit's per-device soak path. The returned
  /// vector always has scans.size() entries (invalid fixes included).
  std::vector<ServiceFix> replay(std::span<const radio::ScanRecord> scans);

  /// Bulk entry point: scores a batch of independent, already-windowed
  /// observations (e.g. one per connected client) through this
  /// service's locator. With `pool`, the batch is chunked across the
  /// workers via `concurrency::parallel_for`. Stateless with respect
  /// to the scan window / Kalman track — per-client smoothing still
  /// goes through on_scan().
  std::vector<LocationEstimate> locate_batch(
      std::span<const Observation> observations,
      concurrency::ThreadPool* pool = nullptr) const;

  /// The most recent fix without feeding anything.
  const ServiceFix& current() const { return fix_; }

  /// Registers a callback fired when the debounced place changes
  /// (old place may be empty on the first resolution).
  using PlaceChangeCallback =
      std::function<void(const std::string& from, const std::string& to)>;
  void on_place_change(PlaceChangeCallback cb) {
    callbacks_.push_back(std::move(cb));
  }

  /// Forgets the window, track, and debounce state (client rejoined).
  void reset();

  const LocationServiceConfig& config() const { return config_; }

  /// False for the unbound (snapshot-serving) form.
  bool bound() const { return locator_ != nullptr; }

 private:
  const Locator& bound_locator() const;

  /// Set only by the owning constructor; locator_ then points into it.
  std::shared_ptr<const Locator> owned_locator_;
  const Locator* locator_;  // non-owning; nullptr when unbound
  LocationServiceConfig config_;
  std::vector<radio::ScanRecord> window_;
  KalmanTracker kalman_;
  ServiceFix fix_;
  std::string candidate_place_;
  std::size_t rejected_samples_ = 0;
  std::size_t scans_seen_ = 0;
  int candidate_streak_ = 0;
  std::string announced_place_;
  std::vector<PlaceChangeCallback> callbacks_;
};

}  // namespace loctk::core

#pragma once

/// \file placement.hpp
/// Access-point placement planning for fingerprint localization.
///
/// The paper deploys four APs "at the four corners of the experiment
/// house" — a sensible guess, but a guess. This planner makes the
/// choice principled: fingerprinting works when every pair of
/// candidate cells has *distinguishable* signatures, so we pick the
/// AP subset (greedy, from a candidate list) that maximizes the
/// minimum pairwise signature separation over the evaluation grid,
/// predicted by the propagation model. A toolkit-expansion feature in
/// the spirit of §6 item 4.

#include <string>
#include <vector>

#include "geom/rect.hpp"
#include "geom/vec2.hpp"
#include "radio/environment.hpp"
#include "radio/propagation.hpp"

namespace loctk::core {

struct PlacementConfig {
  PlacementConfig() {
    // Plan on *predictable* physics (distance decay + walls): the
    // multipath realization of a not-yet-deployed AP cannot be known
    // in advance, and including a simulated one would let the planner
    // overfit to information no real deployment has.
    propagation.multipath_amplitude_db = 0.0;
  }

  /// Pitch of the evaluation grid the separations are scored on (ft).
  double eval_pitch_ft = 10.0;
  /// Two cells are "confusable" when their signatures are closer than
  /// this (dB, Euclidean over the chosen APs).
  double separation_target_db = 6.0;
  /// Only cell pairs at least this far apart (ft) count: neighbors
  /// are always signal-close, and confusing them is a small error;
  /// the planner targets *aliasing* — distant cells that look alike.
  double min_pair_distance_ft = 15.0;
  /// Propagation knobs used for prediction.
  radio::PropagationConfig propagation;
};

/// One scored deployment.
struct PlacementResult {
  /// Indices into the candidate list, in pick order.
  std::vector<std::size_t> chosen;
  /// Minimum signature distance among counted (distant) cell pairs
  /// (dB) — the aliasing bottleneck the greedy tries to raise.
  double min_separation_db = 0.0;
  /// Mean pairwise signature distance (dB).
  double mean_separation_db = 0.0;
  /// Fraction of cell pairs below the separation target.
  double confusable_fraction = 0.0;
};

/// Scores a *given* deployment (AP positions) on `site`.
PlacementResult score_placement(const radio::Environment& site,
                                const std::vector<geom::Vec2>& ap_positions,
                                const PlacementConfig& config = {});

/// Greedily picks `k` positions from `candidates`: each step adds the
/// candidate that most improves the (min, then mean) separation.
/// `site` supplies footprint and walls; its own APs are ignored.
PlacementResult plan_ap_placement(const radio::Environment& site,
                                  const std::vector<geom::Vec2>& candidates,
                                  std::size_t k,
                                  const PlacementConfig& config = {});

/// Builds an environment equal to `site`'s geometry with APs at the
/// given positions (named AP0..APn-1) — ready for a Testbed.
radio::Environment with_aps(const radio::Environment& site,
                            const std::vector<geom::Vec2>& ap_positions);

/// A default candidate lattice: points on a `pitch` grid inside the
/// footprint, pulled `margin` ft off the walls.
std::vector<geom::Vec2> candidate_lattice(const geom::Rect& footprint,
                                          double pitch = 8.0,
                                          double margin = 2.0);

}  // namespace loctk::core

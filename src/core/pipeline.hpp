#pragma once

/// \file pipeline.hpp
/// End-to-end wiring of the two-phase process (paper Figure 1).
///
/// `Testbed` owns a simulated site and hands out everything the
/// paper's six steps need: Phase 1 (steps 1-4) — survey the training
/// map into wi-scan data and generate the training database; Phase 2
/// (steps 5-6) — collect working observations and locate. Examples
/// and benches build on this instead of re-wiring the substrates.

#include <cstdint>
#include <vector>

#include "core/evaluation.hpp"
#include "core/observation.hpp"
#include "radio/environment.hpp"
#include "radio/propagation.hpp"
#include "radio/scanner.hpp"
#include "traindb/generator.hpp"
#include "wiscan/location_map.hpp"
#include "wiscan/survey.hpp"

namespace loctk::core {

/// A simulated deployment: environment + propagation + channel knobs.
/// Non-copyable/non-movable because scanners and locators keep
/// pointers into it; create it first and let it outlive them.
class Testbed {
 public:
  explicit Testbed(radio::Environment env,
                   radio::PropagationConfig propagation_config = {},
                   radio::ChannelConfig channel_config = {})
      : env_(std::move(env)),
        propagation_(env_, propagation_config),
        channel_config_(channel_config) {}

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  const radio::Environment& environment() const { return env_; }
  const radio::Propagation& propagation() const { return propagation_; }
  const radio::ChannelConfig& channel_config() const {
    return channel_config_;
  }

  /// A fresh receiver session.
  radio::Scanner make_scanner(std::uint64_t seed) const {
    return radio::Scanner(propagation_, channel_config_, seed);
  }

  /// Phase 1: survey `map` (`scans` passes per point, RNG `seed`) and
  /// generate the training database through the real wi-scan file
  /// representation (so the format code is always on the hot path).
  traindb::TrainingDatabase train(
      const wiscan::LocationMap& map, int scans, std::uint64_t seed,
      const traindb::GeneratorConfig& config = {}) const;

  /// Phase 2: one observation per truth point.
  std::vector<Observation> observe(const std::vector<geom::Vec2>& truths,
                                   int scans, std::uint64_t seed) const;

 private:
  radio::Environment env_;
  radio::Propagation propagation_;
  radio::ChannelConfig channel_config_;
};

}  // namespace loctk::core

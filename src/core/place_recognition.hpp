#pragma once

/// \file place_recognition.hpp
/// FAB-MAP-style place recognition over WiFi detection vectors.
///
/// The probabilistic locator (§5.1) scores *signal strengths*, which
/// makes it sensitive to per-device RSSI calibration offsets and to
/// the exact dBm a churned AP radiates. Place recognition, in the
/// spirit of "Adopting the FAB-MAP algorithm for indoor localization
/// with WiFi fingerprints" (arXiv 1611.02054), scores *detections*:
/// each training point k is a discrete place with a Bernoulli
/// visibility model per universe slot i,
///
///   theta_ki = P(AP i heard | place k)
///            = (sample_count + alpha) / (scan_count + 2 alpha)
///
/// estimated from the survey's per-<point, AP> detection counts
/// (`ApStatistics::sample_count` / `scan_count`, Laplace-smoothed),
/// and an observation is the binary vector of which universe slots it
/// occupies. The naive-Bayes log-score of place k is
///
///   score(k) = sum_i w_i [ x_i log theta_ki + (1-x_i) log(1-theta_ki) ]
///
/// FAB-MAP's contribution is that raw naive Bayes over-counts: APs
/// that always appear together (same room, same closet) are near-
/// duplicate evidence. We keep its Chow-Liu insight in weight form:
/// each slot's strongest-mutual-information partner is found over the
/// co-occurrence structure of the training places, and the slot's
/// evidence weight is discounted by how much of its entropy that
/// partner already explains,
///
///   w_i = max(min_weight, 1 - I(i; parent_i) / min(H_i, H_parent)).
///
/// Because only detections matter, the locator is invariant to
/// per-device RSSI offsets — exactly the campus fleet regime — at the
/// cost of coarser discrimination between nearby places on one floor.
///
/// Dual implementation, same contract as the other fingerprint
/// locators: `locate()` runs a dense base-plus-delta gather over
/// compiled tables (O(observed slots) per place), and
/// `reference_score()` keeps the readable string-keyed form — a
/// three-way sorted merge over universe, trained list, and
/// observation — pinned against it by the differential oracle.

#include <memory>
#include <string>
#include <vector>

#include "core/compiled_db.hpp"
#include "core/locator.hpp"

namespace loctk::core {

/// Tuning knobs for the detection model.
struct PlaceRecognitionConfig {
  /// Laplace pseudo-count on the Bernoulli visibility estimates; also
  /// the false-detection prior at untrained <place, AP> pairs.
  double alpha = 1.0;
  /// Clamp on theta away from 0/1 (a detector is never perfect), so
  /// no single slot can veto a place with a -inf term.
  double theta_clamp = 1e-3;
  /// Floor on the co-occurrence evidence discount: even a slot fully
  /// explained by its partner keeps this fraction of its weight.
  double min_weight = 0.25;
  /// Observations occupying fewer than this many universe slots are
  /// rejected as degenerate (same gate as ProbabilisticConfig).
  int min_common_aps = 1;
};

/// Co-occurrence diagnostics for one universe slot (docs/tests).
struct SlotEvidence {
  /// Strongest-MI partner slot, or -1 when the slot has no partner
  /// (degenerate marginal or a universe of one).
  int parent = -1;
  /// Mutual information with the parent, in nats.
  double mutual_information = 0.0;
  /// Final evidence weight in [min_weight, 1].
  double weight = 1.0;
};

/// The FAB-MAP-style locator: arg-max over discrete places.
class PlaceRecognitionLocator : public Locator {
 public:
  /// Compiles the database privately. `db` must outlive the locator.
  explicit PlaceRecognitionLocator(const traindb::TrainingDatabase& db,
                                   PlaceRecognitionConfig config = {});

  /// Shares an existing compilation.
  explicit PlaceRecognitionLocator(
      std::shared_ptr<const CompiledDatabase> compiled,
      PlaceRecognitionConfig config = {});

  LocationEstimate locate(const Observation& obs) const override;
  std::string name() const override { return "place-recognition"; }

  /// String-keyed reference score of `obs` at training point `p`:
  /// one pass over the sorted BSSID universe, recomputing every theta
  /// from the point's `ApStatistics` and deciding observed/unobserved
  /// by merging against the observation — no compiled tables touched
  /// (the shared model parameters are only the per-slot weights).
  /// `common_aps`, when given, receives the number of observed APs
  /// inside the universe.
  double reference_score(const Observation& obs, std::size_t p,
                         int* common_aps = nullptr) const;

  /// Per-slot co-occurrence evidence (aligned with the universe).
  const SlotEvidence& evidence(std::size_t slot) const {
    return evidence_[slot];
  }

  const traindb::TrainingDatabase& database() const {
    return compiled_->database();
  }
  const CompiledDatabase& compiled() const { return *compiled_; }
  const PlaceRecognitionConfig& config() const { return config_; }

 private:
  void build_model();

  std::shared_ptr<const CompiledDatabase> compiled_;
  PlaceRecognitionConfig config_;
  /// Per-point survey pass count (max per-AP scan_count; >= 1).
  std::vector<double> point_scans_;
  /// Per-slot evidence weights and their provenance.
  std::vector<SlotEvidence> evidence_;
  /// score(k | nothing observed) = sum_i w_i log(1 - theta_ki).
  std::vector<double> base_;
  /// Row-major points x universe: w_i (log theta_ki - log(1-theta_ki)),
  /// added per observed slot.
  std::vector<double> delta_;
};

}  // namespace loctk::core

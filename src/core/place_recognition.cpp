#include "core/place_recognition.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

namespace loctk::core {

namespace {

/// Binary entropy in nats; 0 at degenerate marginals.
double entropy(double q) {
  if (q <= 0.0 || q >= 1.0) return 0.0;
  return -(q * std::log(q) + (1.0 - q) * std::log(1.0 - q));
}

/// Mutual information of two binary variables from P(x=1, y=1) and the
/// marginals, in nats. Joint cells are floored at a tiny positive mass
/// so sampling noise (p11 slightly above a marginal) cannot produce a
/// negative cell or a log of zero.
double mutual_information(double p11, double qi, double qj) {
  constexpr double kTiny = 1e-12;
  const double cells[4][3] = {
      {std::max(p11, kTiny), qi, qj},
      {std::max(qi - p11, kTiny), qi, 1.0 - qj},
      {std::max(qj - p11, kTiny), 1.0 - qi, qj},
      {std::max(1.0 - qi - qj + p11, kTiny), 1.0 - qi, 1.0 - qj},
  };
  double mi = 0.0;
  for (const auto& c : cells) {
    const double denom = std::max(c[1] * c[2], kTiny);
    mi += c[0] * std::log(c[0] / denom);
  }
  return std::max(mi, 0.0);
}

}  // namespace

PlaceRecognitionLocator::PlaceRecognitionLocator(
    const traindb::TrainingDatabase& db, PlaceRecognitionConfig config)
    : PlaceRecognitionLocator(CompiledDatabase::compile(db), config) {}

PlaceRecognitionLocator::PlaceRecognitionLocator(
    std::shared_ptr<const CompiledDatabase> compiled,
    PlaceRecognitionConfig config)
    : compiled_(std::move(compiled)), config_(config) {
  build_model();
}

void PlaceRecognitionLocator::build_model() {
  const std::size_t points = compiled_->point_count();
  const std::size_t universe = compiled_->universe_size();
  const double alpha = config_.alpha;
  auto clamp_theta = [&](double th) {
    return std::clamp(th, config_.theta_clamp, 1.0 - config_.theta_clamp);
  };

  // Bernoulli visibility table, row-major points x universe. Trained
  // pairs use their own detection counts; untrained pairs carry the
  // Laplace false-detection prior over the point's survey passes.
  std::vector<double> theta(points * universe, 0.0);
  point_scans_.assign(points, 1.0);
  for (std::size_t p = 0; p < points; ++p) {
    const traindb::TrainingPoint& tp = compiled_->point(p);
    double scans = 1.0;
    for (const traindb::ApStatistics& ap : tp.per_ap) {
      scans = std::max(scans, static_cast<double>(ap.scan_count));
    }
    point_scans_[p] = scans;
    const double prior = clamp_theta(alpha / (scans + 2.0 * alpha));
    double* row = theta.data() + p * universe;
    std::fill(row, row + universe, prior);
    for (const traindb::ApStatistics& ap : tp.per_ap) {
      const auto slot = compiled_->slot_of(ap.bssid);
      if (!slot) continue;  // unreachable: universe is the union
      const double s =
          ap.scan_count > 0 ? static_cast<double>(ap.scan_count) : scans;
      row[*slot] = clamp_theta(
          (static_cast<double>(ap.sample_count) + alpha) / (s + 2.0 * alpha));
    }
  }

  // Detection marginals over places (uniform place prior).
  std::vector<double> marginal(universe, 0.0);
  if (points > 0) {
    for (std::size_t p = 0; p < points; ++p) {
      const double* row = theta.data() + p * universe;
      for (std::size_t u = 0; u < universe; ++u) marginal[u] += row[u];
    }
    for (double& q : marginal) q /= static_cast<double>(points);
  }

  // Sparse pairwise co-occurrence: P(i=1, j=1) under the place
  // mixture, accumulated only over pairs trained at a common point
  // (elsewhere both thetas are priors and the product is noise).
  // Memory stays proportional to observed co-occurrence, not
  // universe², which matters at campus cardinality.
  std::unordered_map<std::uint64_t, double> pair11;
  std::vector<std::uint32_t> trained;
  for (std::size_t p = 0; p < points; ++p) {
    const double* mask = compiled_->mask_row(p);
    const double* row = theta.data() + p * universe;
    trained.clear();
    for (std::size_t u = 0; u < universe; ++u) {
      if (mask[u] != 0.0) trained.push_back(static_cast<std::uint32_t>(u));
    }
    for (std::size_t a = 0; a < trained.size(); ++a) {
      const double ta = row[trained[a]];
      for (std::size_t b = a + 1; b < trained.size(); ++b) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(trained[a]) << 32) | trained[b];
        pair11[key] += ta * row[trained[b]];
      }
    }
  }

  // Chow-Liu-style evidence discount: each slot keeps the fraction of
  // its entropy its strongest-MI partner does not already explain.
  evidence_.assign(universe, SlotEvidence{});
  if (points > 0) {
    for (const auto& [key, sum] : pair11) {
      const auto i = static_cast<std::uint32_t>(key >> 32);
      const auto j = static_cast<std::uint32_t>(key & 0xffffffffu);
      const double mi = mutual_information(
          sum / static_cast<double>(points), marginal[i], marginal[j]);
      if (mi > evidence_[i].mutual_information) {
        evidence_[i].mutual_information = mi;
        evidence_[i].parent = static_cast<int>(j);
      }
      if (mi > evidence_[j].mutual_information) {
        evidence_[j].mutual_information = mi;
        evidence_[j].parent = static_cast<int>(i);
      }
    }
    for (std::size_t u = 0; u < universe; ++u) {
      SlotEvidence& e = evidence_[u];
      if (e.parent < 0) continue;
      const double h = std::min(
          entropy(marginal[u]),
          entropy(marginal[static_cast<std::size_t>(e.parent)]));
      if (h <= 0.0) continue;
      e.weight = std::clamp(1.0 - e.mutual_information / h,
                            config_.min_weight, 1.0);
    }
  }

  // Scoring tables: score(k) = base_[k] + sum_{observed i} delta_[k][i].
  base_.assign(points, 0.0);
  delta_.assign(points * universe, 0.0);
  for (std::size_t p = 0; p < points; ++p) {
    const double* row = theta.data() + p * universe;
    double* drow = delta_.data() + p * universe;
    double acc = 0.0;
    for (std::size_t u = 0; u < universe; ++u) {
      const double w = evidence_[u].weight;
      const double log_miss = w * std::log(1.0 - row[u]);
      acc += log_miss;
      drow[u] = w * std::log(row[u]) - log_miss;
    }
    base_[p] = acc;
  }
}

LocationEstimate PlaceRecognitionLocator::locate(
    const Observation& obs) const {
  LocationEstimate est;
  if (obs.empty() || compiled_->empty()) return est;

  const CompiledObservation q = compiled_->compile_observation(obs);
  if (q.in_universe() < config_.min_common_aps) return est;

  const std::size_t universe = compiled_->universe_size();
  double best = -std::numeric_limits<double>::infinity();
  std::size_t best_p = 0;
  for (std::size_t p = 0; p < compiled_->point_count(); ++p) {
    const double* drow = delta_.data() + p * universe;
    double score = base_[p];
    for (const std::uint32_t slot : q.slots) score += drow[slot];
    if (score > best) {
      best = score;
      best_p = p;
    }
  }
  if (best == -std::numeric_limits<double>::infinity()) return est;

  const traindb::TrainingPoint& tp = compiled_->point(best_p);
  est.valid = true;
  est.position = tp.position;
  est.location_name = tp.location;
  est.score = best;
  est.aps_used = q.in_universe();
  return est;
}

double PlaceRecognitionLocator::reference_score(const Observation& obs,
                                                std::size_t p,
                                                int* common_aps) const {
  const traindb::TrainingDatabase& db = compiled_->database();
  const auto& universe = db.bssid_universe();
  const traindb::TrainingPoint& tp = db.points()[p];
  auto clamp_theta = [&](double th) {
    return std::clamp(th, config_.theta_clamp, 1.0 - config_.theta_clamp);
  };

  double scans = 1.0;
  for (const traindb::ApStatistics& ap : tp.per_ap) {
    scans = std::max(scans, static_cast<double>(ap.scan_count));
  }
  const double alpha = config_.alpha;
  const double prior = clamp_theta(alpha / (scans + 2.0 * alpha));

  // Universe, trained list, and observation are all BSSID-sorted: one
  // three-way merge decides each slot's theta and detection bit.
  const auto& trained = tp.per_ap;
  const auto& observed = obs.aps();
  std::size_t t = 0, o = 0;
  double score = 0.0;
  int common = 0;
  for (const std::string& bssid : universe) {
    double th = prior;
    if (t < trained.size() && trained[t].bssid == bssid) {
      const double s = trained[t].scan_count > 0
                           ? static_cast<double>(trained[t].scan_count)
                           : scans;
      th = clamp_theta(
          (static_cast<double>(trained[t].sample_count) + alpha) /
          (s + 2.0 * alpha));
      ++t;
    }
    while (o < observed.size() && observed[o].bssid < bssid) ++o;
    const bool detected = o < observed.size() && observed[o].bssid == bssid;
    if (detected) {
      ++o;
      ++common;
    }
    const double w =
        evidence_[static_cast<std::size_t>(&bssid - universe.data())].weight;
    score += detected ? w * std::log(th) : w * std::log(1.0 - th);
  }
  if (common_aps) *common_aps = common;
  return score;
}

}  // namespace loctk::core

#pragma once

/// \file locator.hpp
/// The common interface every localization algorithm implements.
///
/// The paper's two-phase structure (train, then locate) makes the
/// approaches drop-in interchangeable: both §5.1 (probabilistic) and
/// §5.2 (geometric) consume an `Observation` and produce a position —
/// one snapped to a training point, one a free coordinate. The
/// estimate carries both forms plus a confidence score so evaluation
/// code and the Compositor treat all algorithms uniformly.

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "base/error.hpp"
#include "core/observation.hpp"
#include "geom/vec2.hpp"
#include "traindb/database.hpp"

namespace loctk::concurrency {
class ThreadPool;
}

namespace loctk::core {

/// Result of a locate() call.
struct LocationEstimate {
  /// True when the locator produced any answer at all; the fields
  /// below are meaningless when false (observation empty, no overlap
  /// with the training universe, degenerate geometry...).
  bool valid = false;

  /// Estimated world position (feet).
  geom::Vec2 position;

  /// For fingerprint locators: the winning training-point location
  /// name ("kitchen"); empty for coordinate-valued locators.
  std::string location_name;

  /// Algorithm-specific confidence. Fingerprint locators report the
  /// winning log-likelihood; geometric locators report the negative
  /// RMS circle residual. Only comparable within one algorithm.
  double score = 0.0;

  /// How many APs contributed to the estimate.
  int aps_used = 0;
};

/// Abstract localization algorithm, trained at construction time.
class Locator {
 public:
  virtual ~Locator() = default;

  /// Estimates the client position for one observation.
  virtual LocationEstimate locate(const Observation& obs) const = 0;

  /// Taxonomy-speaking locate: instead of the ambiguous
  /// `valid = false`, degenerate inputs come back as a typed
  /// `loctk::Error` saying *why* there is no answer — kDegenerate for
  /// an empty observation, non-finite dBm, no overlap with the trained
  /// universe, or too few usable ranging circles; kInternal if the
  /// algorithm itself threw. Implemented once on top of the virtual
  /// locate(), so every locator (and every future one) gets the same
  /// degraded-mode contract for free.
  Result<LocationEstimate> try_locate(const Observation& obs) const;

  /// Scores a batch of independent observations (many concurrent
  /// clients, or a replayed capture). With a pool, the batch is
  /// chunked across its workers via `concurrency::parallel_for`;
  /// results are index-aligned with `obs` and identical to calling
  /// locate() per element. locate() is const and training state is
  /// immutable after construction, so the default implementation is
  /// safe for every locator.
  virtual std::vector<LocationEstimate> locate_batch(
      std::span<const Observation> obs,
      concurrency::ThreadPool* pool = nullptr) const;

  /// Short algorithm name for reports ("probabilistic-ml", ...).
  virtual std::string name() const = 0;
};

}  // namespace loctk::core

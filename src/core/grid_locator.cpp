#include "core/grid_locator.hpp"

#include <algorithm>
#include <limits>

#include "concurrency/parallel_for.hpp"

namespace loctk::core {

GridLocator::GridLocator(const traindb::TrainingDatabase& db,
                         geom::Rect bounds, GridLocatorConfig config)
    : field_(db, config.field), config_(config) {
  const double pitch = std::max(0.25, config_.grid_pitch_ft);
  for (double y = bounds.min.y; y <= bounds.max.y; y += pitch) {
    for (double x = bounds.min.x; x <= bounds.max.x; x += pitch) {
      cells_.push_back({x, y});
    }
  }
}

LocationEstimate GridLocator::locate(const Observation& obs) const {
  LocationEstimate est;
  if (obs.empty() || cells_.empty() || field_.database().empty()) {
    return est;
  }

  std::vector<double> scores(cells_.size());
  auto score_cell = [&](std::size_t i) {
    scores[i] = field_.log_likelihood(obs, cells_[i]);
  };
  if (config_.parallel) {
    concurrency::parallel_for(0, cells_.size(), score_cell,
                              /*grain=*/64);
  } else {
    for (std::size_t i = 0; i < cells_.size(); ++i) score_cell(i);
  }

  const auto best = std::max_element(scores.begin(), scores.end());
  if (*best == -std::numeric_limits<double>::infinity()) return est;
  const auto idx =
      static_cast<std::size_t>(std::distance(scores.begin(), best));

  est.valid = true;
  est.position = cells_[idx];
  est.score = *best;
  est.aps_used = static_cast<int>(obs.ap_count());
  // Name the nearest surveyed place for the abstraction step.
  if (const auto* tp = field_.database().nearest_point(est.position)) {
    est.location_name = tp->location;
  }
  return est;
}

}  // namespace loctk::core

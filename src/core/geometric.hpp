#pragma once

/// \file geometric.hpp
/// The paper's §5.2 geometric (multilateration) locator.
///
/// Phase 1 fits, per AP, an inverse-square signal model
/// `ss = a/d² + b` by least squares over the training points (the
/// paper's eq. 2 / Figure 4). Phase 2 converts
/// the observed RSSI vector into distances, forms the circles
/// (AP_i, d_i), intersects *adjacent* pairs — (A,B), (B,C), (C,D),
/// (D,A) for four APs — and returns the median point of the pairwise
/// intersection points P1..P4.
///
/// Knobs expose the paper's implicit design choices for ablation:
/// which signal→distance model, which circle pairs, and which robust
/// estimator combines the pair points.

#include <optional>
#include <variant>
#include <vector>

#include "core/locator.hpp"
#include "geom/circle.hpp"
#include "geom/lateration.hpp"
#include "geom/rect.hpp"
#include "radio/environment.hpp"
#include "stats/regression.hpp"

namespace loctk::core {

/// Signal -> distance model choice.
enum class SignalModel {
  kInverseSquare,  ///< the paper's ss = a/d² + b
  kLogDistance,    ///< RADAR-style ss = p0 − 10·n·log10(d)
  kInversePower,   ///< ss = a/d^k + b with fitted exponent
};

/// Which circle pairs produce intersection points.
enum class PairStrategy {
  kAdjacentRing,  ///< the paper's (A,B),(B,C),...,(last,first)
  kAllPairs,      ///< every unordered pair
};

/// How the pair points collapse into one estimate.
enum class PointEstimator {
  kComponentMedian,  ///< the paper's median point
  kGeometricMedian,  ///< Weiszfeld
  kMean,
};

struct GeometricConfig {
  SignalModel model = SignalModel::kInverseSquare;
  PairStrategy pairs = PairStrategy::kAdjacentRing;
  PointEstimator estimator = PointEstimator::kComponentMedian;
  /// Distance clamp when inverting the signal model (feet). The upper
  /// clamp matters: a deep fade inverts to a near-infinite radius and
  /// would drag the pairwise points off the map.
  double min_distance_ft = 1.0;
  double max_distance_ft = 150.0;
  /// APs below this observed power are too unreliable to range on.
  double min_usable_dbm = -95.0;
};

/// Per-AP fitted signal model (tagged by the config's choice).
struct FittedApModel {
  std::string bssid;
  geom::Vec2 position;
  std::variant<stats::InverseSquareModel, stats::LogDistanceModel,
               stats::InversePowerModel>
      model;

  double predict(double distance_ft) const;
  double invert(double ss_dbm, double d_min, double d_max) const;
  /// R² of the fit on the training data.
  double r_squared() const;
};

/// The §5.2 locator.
class GeometricLocator : public Locator {
 public:
  /// Fits one model per AP from the training database; APs heard at
  /// fewer than 3 training points are unusable and skipped. `env`
  /// provides the AP positions (the database stores only signal
  /// statistics). Throws DatabaseError when fewer than 3 APs are
  /// fittable.
  GeometricLocator(const traindb::TrainingDatabase& db,
                   const radio::Environment& env,
                   GeometricConfig config = {});

  LocationEstimate locate(const Observation& obs) const override;
  std::string name() const override { return "geometric"; }

  /// The fitted per-AP models (for Figure 4 style reporting).
  const std::vector<FittedApModel>& models() const { return models_; }

  /// Ranging step alone: observed vector -> circles.
  std::vector<geom::Circle> circles_for(const Observation& obs) const;

  const GeometricConfig& config() const { return config_; }

 private:
  GeometricConfig config_;
  std::vector<FittedApModel> models_;
};

/// Baseline: the same fitted ranging models feeding classic linear
/// least-squares multilateration with Gauss-Newton refinement instead
/// of the paper's pairwise-median construction. Estimates are clamped
/// to the site footprint (plus a 10 ft margin): biased ranges can
/// drive the unconstrained solution arbitrarily far off the map.
class LaterationLocator : public Locator {
 public:
  LaterationLocator(const traindb::TrainingDatabase& db,
                    const radio::Environment& env,
                    GeometricConfig config = {});

  LocationEstimate locate(const Observation& obs) const override;
  std::string name() const override { return "lateration-ls"; }

 private:
  GeometricLocator ranging_;  // reuse its fitted models
  geom::Rect bounds_;
};

}  // namespace loctk::core

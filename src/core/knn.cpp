#include "core/knn.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/score_kernels.hpp"

namespace loctk::core {

KnnLocator::KnnLocator(const traindb::TrainingDatabase& db, KnnConfig config)
    : KnnLocator(CompiledDatabase::compile(db), config) {}

KnnLocator::KnnLocator(std::shared_ptr<const CompiledDatabase> compiled,
                       KnnConfig config)
    : compiled_(std::move(compiled)), config_(config) {
  config_.k = std::max(1, config_.k);
  const std::size_t points = compiled_->point_count();
  const std::size_t universe = compiled_->universe_size();
  const std::size_t stride = compiled_->row_stride();
  // Pad cells stay 0.0 (zero-init) to match the query vector's pad,
  // so padded lanes contribute exact zero to every distance.
  filled_.assign(points * stride, 0.0);
  for (std::size_t p = 0; p < points; ++p) {
    const double* mean = compiled_->mean_row(p);
    const double* mask = compiled_->mask_row(p);
    double* row = filled_.data() + p * stride;
    for (std::size_t u = 0; u < universe; ++u) {
      row[u] = mask[u] != 0.0 ? mean[u] : config_.missing_dbm;
    }
  }
  if (config_.prune_top_k > 0) {
    pruner_ = std::make_shared<const CandidatePruner>(
        compiled_, PrunerConfig{.strongest_aps = config_.prune_strongest_aps,
                                .top_k = config_.prune_top_k});
  }
}

std::string KnnLocator::name() const {
  return config_.k == 1 ? "nnss" : "knn-" + std::to_string(config_.k);
}

double KnnLocator::signal_distance(
    const Observation& obs, const traindb::TrainingPoint& point) const {
  const auto& universe = compiled_->database().bssid_universe();
  double sum2 = 0.0;
  for (const std::string& bssid : universe) {
    const traindb::ApStatistics* trained = point.find(bssid);
    const auto observed = obs.mean_of(bssid);
    const double a = trained ? trained->mean_dbm : config_.missing_dbm;
    const double b = observed.value_or(config_.missing_dbm);
    sum2 += (a - b) * (a - b);
  }
  return std::sqrt(sum2);
}

LocationEstimate KnnLocator::locate(const Observation& obs) const {
  LocationEstimate est;
  if (obs.empty() || compiled_->empty()) return est;

  const std::size_t points = compiled_->point_count();
  const std::size_t universe = compiled_->universe_size();
  const std::size_t stride = compiled_->row_stride();
  const CompiledObservation cq = compiled_->compile_observation(obs);
  simd::AlignedDoubles query(stride, 0.0);
  for (std::size_t u = 0; u < universe; ++u) {
    query[u] =
        cq.present[u] != 0.0 ? cq.mean_dbm[u] : config_.missing_dbm;
  }

  struct Neighbor {
    const traindb::TrainingPoint* point;
    double distance;
  };
  std::vector<Neighbor> neighbors;
  auto rank_row = [&](std::size_t p) {
    const double sum2 = kernels::sq_dist_row<simd::Vec4d>(
        filled_.data() + p * stride, query.data(), stride);
    neighbors.push_back({&compiled_->point(p), std::sqrt(sum2)});
  };
  // Coarse-to-fine: rank only the prefiltered candidates (exact
  // distances), or everything when pruning is off or degenerate.
  std::vector<std::uint32_t> candidates;
  if (pruner_) candidates = pruner_->select(cq);
  if (!candidates.empty()) {
    neighbors.reserve(candidates.size());
    for (const std::uint32_t p : candidates) rank_row(p);
  } else {
    neighbors.reserve(points);
    for (std::size_t p = 0; p < points; ++p) rank_row(p);
  }
  const std::size_t k =
      std::min<std::size_t>(static_cast<std::size_t>(config_.k),
                            neighbors.size());
  std::partial_sort(neighbors.begin(),
                    neighbors.begin() + static_cast<std::ptrdiff_t>(k),
                    neighbors.end(),
                    [](const Neighbor& a, const Neighbor& b) {
                      return a.distance < b.distance;
                    });

  geom::Vec2 weighted;
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double w =
        config_.inverse_distance_weighting
            ? 1.0 / (neighbors[i].distance + config_.weighting_epsilon)
            : 1.0;
    weighted += neighbors[i].point->position * w;
    weight_sum += w;
  }
  if (weight_sum <= 0.0) return est;

  est.valid = true;
  est.position = weighted / weight_sum;
  // The nearest neighbor names the cell even when k > 1 interpolates.
  est.location_name = neighbors.front().point->location;
  est.score = -neighbors.front().distance;
  est.aps_used = static_cast<int>(obs.ap_count());
  return est;
}

}  // namespace loctk::core

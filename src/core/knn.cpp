#include "core/knn.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace loctk::core {

KnnLocator::KnnLocator(const traindb::TrainingDatabase& db, KnnConfig config)
    : db_(&db), config_(config) {
  config_.k = std::max(1, config_.k);
}

std::string KnnLocator::name() const {
  return config_.k == 1 ? "nnss" : "knn-" + std::to_string(config_.k);
}

double KnnLocator::signal_distance(
    const Observation& obs, const traindb::TrainingPoint& point) const {
  const auto& universe = db_->bssid_universe();
  double sum2 = 0.0;
  for (const std::string& bssid : universe) {
    const traindb::ApStatistics* trained = point.find(bssid);
    const auto observed = obs.mean_of(bssid);
    const double a = trained ? trained->mean_dbm : config_.missing_dbm;
    const double b = observed.value_or(config_.missing_dbm);
    sum2 += (a - b) * (a - b);
  }
  return std::sqrt(sum2);
}

LocationEstimate KnnLocator::locate(const Observation& obs) const {
  LocationEstimate est;
  if (obs.empty() || db_->empty()) return est;

  struct Neighbor {
    const traindb::TrainingPoint* point;
    double distance;
  };
  std::vector<Neighbor> neighbors;
  neighbors.reserve(db_->size());
  for (const traindb::TrainingPoint& p : db_->points()) {
    neighbors.push_back({&p, signal_distance(obs, p)});
  }
  const std::size_t k =
      std::min<std::size_t>(static_cast<std::size_t>(config_.k),
                            neighbors.size());
  std::partial_sort(neighbors.begin(),
                    neighbors.begin() + static_cast<std::ptrdiff_t>(k),
                    neighbors.end(),
                    [](const Neighbor& a, const Neighbor& b) {
                      return a.distance < b.distance;
                    });

  geom::Vec2 weighted;
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double w =
        config_.inverse_distance_weighting
            ? 1.0 / (neighbors[i].distance + config_.weighting_epsilon)
            : 1.0;
    weighted += neighbors[i].point->position * w;
    weight_sum += w;
  }
  if (weight_sum <= 0.0) return est;

  est.valid = true;
  est.position = weighted / weight_sum;
  // The nearest neighbor names the cell even when k > 1 interpolates.
  est.location_name = neighbors.front().point->location;
  est.score = -neighbors.front().distance;
  est.aps_used = static_cast<int>(obs.ap_count());
  return est;
}

}  // namespace loctk::core

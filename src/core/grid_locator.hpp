#pragma once

/// \file grid_locator.hpp
/// Fine-grid maximum-likelihood search over the continuous field.
///
/// The paper's §5.1 locator can only answer with a surveyed training
/// point; its future work asks for "accurate and finer-grained"
/// estimates. This locator maximizes the interpolated likelihood of
/// `SignalField` over a dense candidate grid covering the site, so
/// the answer resolution is the grid pitch, not the survey pitch.
/// Scoring the grid is embarrassingly parallel; cells fan out over
/// the toolkit's thread pool.

#include "concurrency/thread_pool.hpp"
#include "core/locator.hpp"
#include "core/signal_field.hpp"
#include "geom/rect.hpp"

namespace loctk::core {

struct GridLocatorConfig {
  SignalFieldConfig field;
  /// Candidate pitch in feet.
  double grid_pitch_ft = 2.0;
  /// Use the process-wide thread pool; set false for deterministic
  /// single-thread profiling.
  bool parallel = true;
};

class GridLocator : public Locator {
 public:
  /// `bounds` is the search area (typically the environment
  /// footprint). `db` must outlive the locator.
  GridLocator(const traindb::TrainingDatabase& db, geom::Rect bounds,
              GridLocatorConfig config = {});

  LocationEstimate locate(const Observation& obs) const override;
  std::string name() const override { return "grid-ml"; }

  const SignalField& field() const { return field_; }
  std::size_t cell_count() const { return cells_.size(); }

 private:
  SignalField field_;
  GridLocatorConfig config_;
  std::vector<geom::Vec2> cells_;
};

}  // namespace loctk::core

#include "core/hmm_tracker.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace loctk::core {

HmmTracker::HmmTracker(const traindb::TrainingDatabase& db,
                       HmmTrackerConfig config)
    : db_(&db), config_(config), emission_(db, config.likelihood) {
  const std::size_t n = db.size();
  transition_.assign(n * n, 0.0);
  const double two_sigma2 =
      2.0 * config_.step_sigma_ft * config_.step_sigma_ft;
  const double mix = std::clamp(config_.uniform_mixing, 0.0, 1.0);
  for (std::size_t from = 0; from < n; ++from) {
    double row_sum = 0.0;
    for (std::size_t to = 0; to < n; ++to) {
      const double d2 = geom::distance2(db.points()[from].position,
                                        db.points()[to].position);
      const double w = std::exp(-d2 / two_sigma2);
      transition_[from * n + to] = w;
      row_sum += w;
    }
    // Normalize and blend in the uniform escape mass.
    for (std::size_t to = 0; to < n; ++to) {
      double& t = transition_[from * n + to];
      t = (1.0 - mix) * (t / row_sum) + mix / static_cast<double>(n);
    }
  }
  reset();
}

void HmmTracker::reset() {
  const std::size_t n = db_->size();
  belief_.assign(n, n ? 1.0 / static_cast<double>(n) : 0.0);
  scratch_.assign(n, 0.0);
}

void HmmTracker::predict() {
  const std::size_t n = belief_.size();
  std::fill(scratch_.begin(), scratch_.end(), 0.0);
  for (std::size_t from = 0; from < n; ++from) {
    const double mass = belief_[from];
    if (mass <= 0.0) continue;
    const double* row = &transition_[from * n];
    for (std::size_t to = 0; to < n; ++to) {
      scratch_[to] += mass * row[to];
    }
  }
  belief_.swap(scratch_);
}

double HmmTracker::entropy() const {
  double h = 0.0;
  for (const double p : belief_) {
    if (p > 0.0) h -= p * std::log(p);
  }
  return h;
}

LocationEstimate HmmTracker::step(const Observation& obs) {
  LocationEstimate est;
  const std::size_t n = belief_.size();
  if (n == 0) return est;

  predict();

  if (!obs.empty()) {
    // Update with the paper's eq. (1) emission, in log space against
    // the max to avoid underflow.
    const std::vector<ScoredPoint> scores = emission_.score_all(obs);
    double max_ll = -std::numeric_limits<double>::infinity();
    for (const ScoredPoint& sp : scores) {
      max_ll = std::max(max_ll, sp.log_likelihood);
    }
    if (max_ll > -std::numeric_limits<double>::infinity()) {
      double sum = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        belief_[i] *= std::exp(scores[i].log_likelihood - max_ll);
        sum += belief_[i];
      }
      if (sum > 0.0) {
        for (double& b : belief_) b /= sum;
      } else {
        reset();
      }
    }
  }

  // Report.
  std::size_t map_idx = 0;
  geom::Vec2 mean;
  for (std::size_t i = 0; i < n; ++i) {
    mean += db_->points()[i].position * belief_[i];
    if (belief_[i] > belief_[map_idx]) map_idx = i;
  }
  const traindb::TrainingPoint& map_point = db_->points()[map_idx];
  est.valid = true;
  est.position = config_.use_posterior_mean ? mean : map_point.position;
  est.location_name = map_point.location;
  est.score = belief_[map_idx];
  est.aps_used = static_cast<int>(obs.ap_count());
  return est;
}

}  // namespace loctk::core

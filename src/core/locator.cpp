#include "core/locator.hpp"

#include "concurrency/parallel_for.hpp"

namespace loctk::core {

std::vector<LocationEstimate> Locator::locate_batch(
    std::span<const Observation> obs, concurrency::ThreadPool* pool) const {
  std::vector<LocationEstimate> out(obs.size());
  auto body = [&](std::size_t i) { out[i] = locate(obs[i]); };
  if (pool && obs.size() > 1) {
    concurrency::parallel_for(*pool, 0, obs.size(), body);
  } else {
    for (std::size_t i = 0; i < obs.size(); ++i) body(i);
  }
  return out;
}

}  // namespace loctk::core

#include "core/locator.hpp"

#include "concurrency/parallel_for.hpp"

namespace loctk::core {

Result<LocationEstimate> Locator::try_locate(const Observation& obs) const {
  if (obs.empty()) {
    return Error(ErrorCode::kDegenerate, "empty observation")
        .with_context("locating with " + name());
  }
  if (!obs.is_finite()) {
    return Error(ErrorCode::kDegenerate,
                 "observation contains non-finite dBm values")
        .with_context("locating with " + name());
  }
  LocationEstimate est;
  try {
    est = locate(obs);
  } catch (const std::exception& e) {
    return Error(ErrorCode::kInternal, e.what())
        .with_context("locating with " + name());
  }
  if (!est.valid) {
    // The observation was well-formed but the algorithm has no
    // answer: all-unknown BSSIDs, < min_common_aps overlap, or fewer
    // usable ranging circles than the geometry needs.
    return Error(ErrorCode::kDegenerate,
                 "no usable estimate (observation shares too little "
                 "with the training data)")
        .with_context("locating with " + name());
  }
  return est;
}

std::vector<LocationEstimate> Locator::locate_batch(
    std::span<const Observation> obs, concurrency::ThreadPool* pool) const {
  std::vector<LocationEstimate> out(obs.size());
  auto body = [&](std::size_t i) { out[i] = locate(obs[i]); };
  if (pool && obs.size() > 1) {
    concurrency::parallel_for(*pool, 0, obs.size(), body);
  } else {
    for (std::size_t i = 0; i < obs.size(); ++i) body(i);
  }
  return out;
}

}  // namespace loctk::core

#include "core/locator.hpp"

#include "base/metrics.hpp"
#include "concurrency/parallel_for.hpp"

namespace loctk::core {

namespace {

// Shared across every Locator implementation: the non-virtual entry
// points (try_locate / locate_batch) are the choke points, so counters
// here see all production traffic regardless of algorithm.
metrics::Counter& locate_calls() {
  static metrics::Counter& c = metrics::counter("locate.calls");
  return c;
}
metrics::Counter& locate_degenerate() {
  static metrics::Counter& c = metrics::counter("locate.degenerate");
  return c;
}
metrics::Counter& locate_errors() {
  static metrics::Counter& c = metrics::counter("locate.errors");
  return c;
}
metrics::HistogramMetric& locate_latency() {
  static metrics::HistogramMetric& h =
      metrics::histogram("locate.latency.seconds");
  return h;
}
metrics::Counter& batch_calls() {
  static metrics::Counter& c = metrics::counter("locate.batch.calls");
  return c;
}
metrics::Counter& batch_observations() {
  static metrics::Counter& c =
      metrics::counter("locate.batch.observations");
  return c;
}

}  // namespace

Result<LocationEstimate> Locator::try_locate(const Observation& obs) const {
  locate_calls().increment();
  metrics::ScopedTimer timer(locate_latency());
  if (obs.empty()) {
    locate_degenerate().increment();
    return Error(ErrorCode::kDegenerate, "empty observation")
        .with_context("locating with " + name());
  }
  if (!obs.is_finite()) {
    locate_degenerate().increment();
    return Error(ErrorCode::kDegenerate,
                 "observation contains non-finite dBm values")
        .with_context("locating with " + name());
  }
  LocationEstimate est;
  try {
    est = locate(obs);
  } catch (const std::exception& e) {
    locate_errors().increment();
    return Error(ErrorCode::kInternal, e.what())
        .with_context("locating with " + name());
  }
  if (!est.valid) {
    // The observation was well-formed but the algorithm has no
    // answer: all-unknown BSSIDs, < min_common_aps overlap, or fewer
    // usable ranging circles than the geometry needs.
    locate_degenerate().increment();
    return Error(ErrorCode::kDegenerate,
                 "no usable estimate (observation shares too little "
                 "with the training data)")
        .with_context("locating with " + name());
  }
  return est;
}

std::vector<LocationEstimate> Locator::locate_batch(
    std::span<const Observation> obs, concurrency::ThreadPool* pool) const {
  batch_calls().increment();
  batch_observations().add(obs.size());
  locate_calls().add(obs.size());
  // One timer for the whole batch, weighted so the latency histogram
  // sees the per-observation mean n times. Per-item timers inside the
  // parallel body would measure contention, not locate cost.
  metrics::ScopedTimer timer(locate_latency(), obs.size());
  std::vector<LocationEstimate> out(obs.size());
  auto body = [&](std::size_t i) {
    out[i] = locate(obs[i]);
    if (!out[i].valid) locate_degenerate().increment();
  };
  if (pool && obs.size() > 1) {
    concurrency::parallel_for(*pool, 0, obs.size(), body);
  } else {
    for (std::size_t i = 0; i < obs.size(); ++i) body(i);
  }
  return out;
}

}  // namespace loctk::core

#pragma once

/// \file histogram_locator.hpp
/// Distribution-aware fingerprint matching.
///
/// The paper's future-work §6 item 2: "Our new algorithm will
/// consider the distribution of these values" rather than only the
/// mean. This locator builds, per <training point, AP>, a histogram
/// of the retained raw samples and scores an observation by the
/// smoothed log-probability of each of its raw readings. It needs a
/// database generated with `GeneratorConfig::keep_samples = true`.

#include <vector>

#include "core/locator.hpp"
#include "stats/histogram.hpp"

namespace loctk::core {

struct HistogramLocatorConfig {
  /// Histogram support (dBm) and bin width.
  double lo_dbm = -100.0;
  double hi_dbm = -10.0;
  double bin_width_db = 2.0;
  /// Laplace pseudo-count per bin.
  double alpha = 0.5;
  /// Log-penalty per AP present on only one side.
  double missing_ap_log_penalty = -6.0;
};

class HistogramLocator : public Locator {
 public:
  /// Throws DatabaseError when `db` retains no raw samples.
  explicit HistogramLocator(const traindb::TrainingDatabase& db,
                            HistogramLocatorConfig config = {});

  LocationEstimate locate(const Observation& obs) const override;
  std::string name() const override { return "histogram"; }

  /// Log-likelihood of the observation's raw readings at training
  /// point index `point_index`.
  double log_likelihood(const Observation& obs,
                        std::size_t point_index) const;

 private:
  const traindb::TrainingDatabase* db_;  // non-owning
  HistogramLocatorConfig config_;
  /// histograms_[point][ap-slot] aligned with points()[i].per_ap.
  std::vector<std::vector<stats::Histogram>> histograms_;
};

}  // namespace loctk::core

#pragma once

/// \file histogram_locator.hpp
/// Distribution-aware fingerprint matching.
///
/// The paper's future-work §6 item 2: "Our new algorithm will
/// consider the distribution of these values" rather than only the
/// mean. This locator builds, per <training point, AP>, a histogram
/// of the retained raw samples and scores an observation by the
/// smoothed log-probability of each of its raw readings. It needs a
/// database generated with `GeneratorConfig::keep_samples = true`.
///
/// locate() scores through a compiled table: every <point, universe
/// slot> histogram is flattened to per-bin log-probabilities and the
/// observation's readings are reduced to per-slot bin counts, so the
/// hot loop needs no string compares or per-sample log() calls. The
/// table is stored points-major (one padded, 64-byte-aligned column
/// of training points per <slot, bin> cell), so scoring vectorizes
/// across training points: each observed (slot, bin, count) is one
/// SIMD axpy over the whole column. The per-index `log_likelihood()`
/// keeps the readable string-keyed reference form.

#include <cstdint>
#include <vector>

#include "core/compiled_db.hpp"
#include "core/locator.hpp"
#include "stats/histogram.hpp"

namespace loctk::core {

struct HistogramLocatorConfig {
  /// Histogram support (dBm) and bin width.
  double lo_dbm = -100.0;
  double hi_dbm = -10.0;
  double bin_width_db = 2.0;
  /// Laplace pseudo-count per bin.
  double alpha = 0.5;
  /// Log-penalty per AP present on only one side.
  double missing_ap_log_penalty = -6.0;
};

class HistogramLocator : public Locator {
 public:
  /// Throws DatabaseError when `db` retains no raw samples.
  explicit HistogramLocator(const traindb::TrainingDatabase& db,
                            HistogramLocatorConfig config = {});

  /// Shares an existing compilation of `db`.
  explicit HistogramLocator(
      std::shared_ptr<const CompiledDatabase> compiled,
      HistogramLocatorConfig config = {});

  LocationEstimate locate(const Observation& obs) const override;
  std::string name() const override { return "histogram"; }

  /// Log-likelihood of the observation's raw readings at training
  /// point index `point_index` (string-keyed reference form).
  double log_likelihood(const Observation& obs,
                        std::size_t point_index) const;

 private:
  /// One observed slot reduced to bin counts for table scoring.
  struct SlotBins {
    std::uint32_t slot = 0;
    /// (bin, count) pairs; bin == bins_ is the out-of-range cell.
    std::vector<std::pair<std::uint32_t, double>> bins;
    /// 1 / number of raw readings (1.0 for a mean-only slot).
    double inv_n = 1.0;
  };

  std::size_t bin_of(double x) const;
  std::vector<SlotBins> compile_query(const CompiledObservation& q) const;

  std::shared_ptr<const CompiledDatabase> compiled_;
  HistogramLocatorConfig config_;
  std::size_t bins_ = 0;
  /// Training points padded up to a simd::kLanes multiple — the
  /// column length of every transposed table below.
  std::size_t point_stride_ = 0;
  /// histograms_[point][ap-slot] aligned with points()[i].per_ap.
  std::vector<std::vector<stats::Histogram>> histograms_;
  /// Points-major log-probability table: the column for <slot, bin>
  /// starts at cols_[(slot * (bins_ + 1) + bin) * point_stride_];
  /// bin == bins_ is the out-of-range cell. Cells for untrained
  /// <point, slot> pairs are 0.0 and gated out by `mask_cols_`.
  simd::AlignedDoubles cols_;
  /// Transposed presence mask, one padded column per slot:
  /// mask_cols_[slot * point_stride_ + point].
  simd::AlignedDoubles mask_cols_;
  /// trained_count(p) as doubles, padded, for the vectorized penalty
  /// term.
  simd::AlignedDoubles trained_counts_;
};

}  // namespace loctk::core

#pragma once

/// \file path.hpp
/// Client mobility paths for tracking workloads.
///
/// The tracking benches and demos need a ground-truth trajectory to
/// walk: a piecewise-linear path through waypoints, sampled by
/// distance walked. `WaypointPath` is that; `random_waypoint_path`
/// generates the classic random-waypoint mobility model used
/// throughout the localization literature to stress trackers.

#include <vector>

#include "geom/rect.hpp"
#include "geom/vec2.hpp"
#include "stats/rng.hpp"

namespace loctk::core {

/// A piecewise-linear path through ordered waypoints.
class WaypointPath {
 public:
  WaypointPath() = default;
  /// Requires at least one waypoint to be useful; a single waypoint
  /// is a stationary "path".
  explicit WaypointPath(std::vector<geom::Vec2> waypoints);

  const std::vector<geom::Vec2>& waypoints() const { return waypoints_; }

  /// Total walkable length (ft).
  double length() const { return total_length_; }

  /// Position after walking `distance` ft from the start; clamped to
  /// the endpoints (no wrap).
  geom::Vec2 position_at(double distance) const;

  /// Walking direction (unit vector) at `distance`; {0,0} for a
  /// stationary path.
  geom::Vec2 heading_at(double distance) const;

  /// Convenience: position after `t` seconds at `speed` ft/s.
  geom::Vec2 position_at_time(double t, double speed_ft_s = 2.0) const {
    return position_at(t * speed_ft_s);
  }

  bool empty() const { return waypoints_.empty(); }

 private:
  /// Segment index and interpolation offset for a walked distance.
  std::pair<std::size_t, double> locate_segment(double distance) const;

  std::vector<geom::Vec2> waypoints_;
  /// Cumulative length up to waypoint i (cum_[0] == 0).
  std::vector<double> cum_;
  double total_length_ = 0.0;
};

/// The fixed perimeter-and-middle tour of the paper house used by the
/// tracking bench and demos (deterministic; ~185 ft long).
WaypointPath paper_house_tour();

/// Random-waypoint mobility: `n` waypoints uniform in `area` (shrunk
/// by `margin` from the walls), consecutive waypoints at least
/// `min_leg` apart. Deterministic per RNG state.
WaypointPath random_waypoint_path(const geom::Rect& area, int n,
                                  stats::Rng& rng, double margin = 3.0,
                                  double min_leg = 8.0);

}  // namespace loctk::core

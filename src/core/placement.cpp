#include "core/placement.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace loctk::core {

radio::Environment with_aps(const radio::Environment& site,
                            const std::vector<geom::Vec2>& ap_positions) {
  radio::Environment env(site.footprint());
  for (const radio::Wall& w : site.walls()) env.add_wall(w);
  for (std::size_t i = 0; i < ap_positions.size(); ++i) {
    radio::AccessPoint ap;
    ap.bssid = radio::synthetic_bssid(static_cast<int>(i));
    ap.name = "AP" + std::to_string(i);
    ap.position = ap_positions[i];
    env.add_access_point(ap);
  }
  return env;
}

std::vector<geom::Vec2> candidate_lattice(const geom::Rect& footprint,
                                          double pitch, double margin) {
  std::vector<geom::Vec2> out;
  const geom::Rect inner = footprint.inflated(-margin);
  for (double y = inner.min.y; y <= inner.max.y + 1e-9; y += pitch) {
    for (double x = inner.min.x; x <= inner.max.x + 1e-9; x += pitch) {
      out.push_back({x, y});
    }
  }
  return out;
}

namespace {

// Evaluation-grid cells for a site.
std::vector<geom::Vec2> eval_cells(const geom::Rect& footprint,
                                   double pitch) {
  std::vector<geom::Vec2> cells;
  for (double y = footprint.min.y + pitch / 2.0; y < footprint.max.y;
       y += pitch) {
    for (double x = footprint.min.x + pitch / 2.0; x < footprint.max.x;
         x += pitch) {
      cells.push_back({x, y});
    }
  }
  return cells;
}

// Predicted mean RSSI of each candidate AP at each cell:
// signal[ap][cell].
std::vector<std::vector<double>> predict_signals(
    const radio::Environment& site, const std::vector<geom::Vec2>& aps,
    const std::vector<geom::Vec2>& cells,
    const radio::PropagationConfig& pc) {
  const radio::Environment env = with_aps(site, aps);
  const radio::Propagation prop(env, pc);
  std::vector<std::vector<double>> signal(
      aps.size(), std::vector<double>(cells.size()));
  for (std::size_t a = 0; a < aps.size(); ++a) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      signal[a][c] = prop.mean_rssi_dbm(a, cells[c]);
    }
  }
  return signal;
}

struct SeparationStats {
  double min_db = std::numeric_limits<double>::infinity();
  double mean_db = 0.0;
  double confusable = 0.0;
};

// Pairwise signature separation over the cells, restricted to the AP
// subset `subset` (indices into `signal`) and to cell pairs at least
// `min_pair_dist` apart (aliasing pairs, not neighbors).
SeparationStats separation(const std::vector<std::vector<double>>& signal,
                           const std::vector<std::size_t>& subset,
                           const std::vector<geom::Vec2>& cells,
                           double target_db, double min_pair_dist) {
  SeparationStats st;
  const std::size_t n_cells = cells.size();
  const double min_d2 = min_pair_dist * min_pair_dist;
  std::size_t pairs = 0, confusable = 0;
  double sum = 0.0;
  for (std::size_t i = 0; i < n_cells; ++i) {
    for (std::size_t j = i + 1; j < n_cells; ++j) {
      if (geom::distance2(cells[i], cells[j]) < min_d2) continue;
      double d2 = 0.0;
      for (const std::size_t a : subset) {
        const double diff = signal[a][i] - signal[a][j];
        d2 += diff * diff;
      }
      const double d = std::sqrt(d2);
      st.min_db = std::min(st.min_db, d);
      sum += d;
      if (d < target_db) ++confusable;
      ++pairs;
    }
  }
  if (pairs > 0) {
    st.mean_db = sum / static_cast<double>(pairs);
    st.confusable =
        static_cast<double>(confusable) / static_cast<double>(pairs);
  } else {
    st.min_db = 0.0;
  }
  return st;
}

}  // namespace

PlacementResult score_placement(const radio::Environment& site,
                                const std::vector<geom::Vec2>& ap_positions,
                                const PlacementConfig& config) {
  const auto cells = eval_cells(site.footprint(), config.eval_pitch_ft);
  const auto signal =
      predict_signals(site, ap_positions, cells, config.propagation);
  std::vector<std::size_t> all(ap_positions.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  const SeparationStats st =
      separation(signal, all, cells, config.separation_target_db,
                 config.min_pair_distance_ft);
  PlacementResult r;
  r.chosen = all;
  r.min_separation_db = st.min_db;
  r.mean_separation_db = st.mean_db;
  r.confusable_fraction = st.confusable;
  return r;
}

PlacementResult plan_ap_placement(const radio::Environment& site,
                                  const std::vector<geom::Vec2>& candidates,
                                  std::size_t k,
                                  const PlacementConfig& config) {
  PlacementResult result;
  if (candidates.empty() || k == 0) return result;
  k = std::min(k, candidates.size());

  const auto cells = eval_cells(site.footprint(), config.eval_pitch_ft);
  const auto signal =
      predict_signals(site, candidates, cells, config.propagation);

  std::vector<std::size_t> chosen;
  std::vector<bool> used(candidates.size(), false);
  while (chosen.size() < k) {
    std::size_t best = candidates.size();
    SeparationStats best_st;
    best_st.min_db = -1.0;
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      if (used[c]) continue;
      std::vector<std::size_t> trial = chosen;
      trial.push_back(c);
      const SeparationStats st =
          separation(signal, trial, cells, config.separation_target_db,
                     config.min_pair_distance_ft);
      // Lexicographic: raise the bottleneck first, then the mean.
      const bool better =
          st.min_db > best_st.min_db + 1e-12 ||
          (std::abs(st.min_db - best_st.min_db) <= 1e-12 &&
           st.mean_db > best_st.mean_db);
      if (best == candidates.size() || better) {
        best = c;
        best_st = st;
      }
    }
    used[best] = true;
    chosen.push_back(best);
    result.min_separation_db = best_st.min_db;
    result.mean_separation_db = best_st.mean_db;
    result.confusable_fraction = best_st.confusable;
  }
  result.chosen = std::move(chosen);
  return result;
}

}  // namespace loctk::core

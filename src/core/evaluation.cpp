#include "core/evaluation.hpp"

#include <algorithm>
#include <cmath>

#include "stats/histogram.hpp"
#include "stats/rng.hpp"

namespace loctk::core {

std::size_t EvaluationResult::valid_count() const {
  return static_cast<std::size_t>(
      std::count_if(outcomes.begin(), outcomes.end(),
                    [](const TestOutcome& o) { return o.estimate.valid; }));
}

double EvaluationResult::valid_estimation_rate() const {
  if (outcomes.empty()) return 0.0;
  const auto correct = std::count_if(
      outcomes.begin(), outcomes.end(),
      [](const TestOutcome& o) { return o.cell_correct; });
  return static_cast<double>(correct) /
         static_cast<double>(outcomes.size());
}

std::vector<double> EvaluationResult::sorted_errors() const {
  std::vector<double> errs;
  for (const TestOutcome& o : outcomes) {
    if (o.estimate.valid) errs.push_back(o.error_ft);
  }
  std::sort(errs.begin(), errs.end());
  return errs;
}

double EvaluationResult::mean_error_ft() const {
  const std::vector<double> errs = sorted_errors();
  if (errs.empty()) return 0.0;
  double sum = 0.0;
  for (const double e : errs) sum += e;
  return sum / static_cast<double>(errs.size());
}

double EvaluationResult::median_error_ft() const {
  const std::vector<double> errs = sorted_errors();
  return errs.empty() ? 0.0 : stats::quantile(errs, 0.5);
}

double EvaluationResult::p90_error_ft() const {
  const std::vector<double> errs = sorted_errors();
  return errs.empty() ? 0.0 : stats::quantile(errs, 0.9);
}

double EvaluationResult::max_error_ft() const {
  const std::vector<double> errs = sorted_errors();
  return errs.empty() ? 0.0 : errs.back();
}

EvaluationResult evaluate(const Locator& locator,
                          const traindb::TrainingDatabase& db,
                          const std::vector<geom::Vec2>& truths,
                          const std::vector<Observation>& observations) {
  EvaluationResult result;
  result.locator_name = locator.name();
  const std::size_t n = std::min(truths.size(), observations.size());
  result.outcomes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    TestOutcome out;
    out.truth = truths[i];
    out.estimate = locator.locate(observations[i]);
    if (out.estimate.valid) {
      out.error_ft = geom::distance(out.truth, out.estimate.position);
      if (!out.estimate.location_name.empty()) {
        const traindb::TrainingPoint* oracle = db.nearest_point(out.truth);
        out.cell_correct =
            oracle && oracle->location == out.estimate.location_name;
      }
    }
    result.outcomes.push_back(std::move(out));
  }
  return result;
}

std::vector<Observation> collect_observations(
    radio::Scanner& scanner, const std::vector<geom::Vec2>& truths,
    int scans_per_point) {
  std::vector<Observation> obs;
  obs.reserve(truths.size());
  for (const geom::Vec2 p : truths) {
    scanner.reset_session();
    obs.push_back(
        Observation::from_scans(scanner.collect(p, scans_per_point)));
  }
  return obs;
}

wiscan::LocationMap make_training_grid(const geom::Rect& footprint,
                                       double spacing_ft) {
  wiscan::LocationMap map;
  // Grid points at multiples of the spacing, strictly inside the
  // footprint (paper: "each training point (x, y) where x and y are
  // product of 10 feet" within the 50x40 house).
  const double x0 =
      std::ceil(footprint.min.x / spacing_ft) * spacing_ft;
  const double y0 =
      std::ceil(footprint.min.y / spacing_ft) * spacing_ft;
  for (double y = y0; y < footprint.max.y; y += spacing_ft) {
    for (double x = x0; x < footprint.max.x; x += spacing_ft) {
      if (x <= footprint.min.x || y <= footprint.min.y) continue;
      const std::string name = "p" + std::to_string(static_cast<int>(x)) +
                               "-" + std::to_string(static_cast<int>(y));
      map.set(name, {x, y});
    }
  }
  return map;
}

std::vector<geom::Vec2> make_scattered_test_points(
    const geom::Rect& footprint, int count, std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<geom::Vec2> points;
  points.reserve(static_cast<std::size_t>(count));
  const geom::Rect inner = footprint.inflated(-3.0);  // stay off walls
  while (points.size() < static_cast<std::size_t>(count)) {
    geom::Vec2 p{rng.uniform(inner.min.x, inner.max.x),
                 rng.uniform(inner.min.y, inner.max.y)};
    // Snap to half-foot resolution (surveyors stand on tape marks),
    // then reject points too close to a previous pick.
    p.x = std::round(p.x * 2.0) / 2.0;
    p.y = std::round(p.y * 2.0) / 2.0;
    // Keep test points off the common 5/10-ft training lattices so no
    // observation is taken exactly at a surveyed point.
    if (std::fmod(p.x, 5.0) == 0.0 && std::fmod(p.y, 5.0) == 0.0) {
      continue;
    }
    const bool crowded =
        std::any_of(points.begin(), points.end(), [&](geom::Vec2 q) {
          return geom::distance(p, q) < 6.0;
        });
    if (!crowded) points.push_back(p);
  }
  return points;
}

}  // namespace loctk::core

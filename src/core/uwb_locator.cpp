#include "core/uwb_locator.hpp"

#include <algorithm>
#include <map>

namespace loctk::core {

std::vector<geom::RangeMeasurement> UwbLocator::average_by_anchor(
    const std::vector<radio::UwbRange>& ranges) {
  struct Acc {
    geom::Vec2 pos;
    double sum = 0.0;
    int count = 0;
  };
  std::map<std::string, Acc> by_anchor;
  for (const radio::UwbRange& r : ranges) {
    Acc& acc = by_anchor[r.anchor_id];
    acc.pos = r.anchor_pos;
    acc.sum += r.range_ft;
    ++acc.count;
  }
  std::vector<geom::RangeMeasurement> out;
  out.reserve(by_anchor.size());
  for (const auto& [id, acc] : by_anchor) {
    out.push_back({acc.pos, acc.sum / acc.count});
  }
  return out;
}

std::optional<geom::Vec2> UwbLocator::locate(
    const std::vector<radio::UwbRange>& ranges) const {
  std::vector<geom::RangeMeasurement> meas = average_by_anchor(ranges);
  if (meas.size() < 3) return std::nullopt;

  auto solve = [&](const std::vector<geom::RangeMeasurement>& m)
      -> std::optional<geom::Vec2> {
    const auto linear = geom::lateration_least_squares(m);
    if (!linear) return std::nullopt;
    const geom::Vec2 refined = geom::lateration_gauss_newton(m, *linear);
    if (!geom::is_finite(refined)) return std::nullopt;
    return refined;
  };

  std::optional<geom::Vec2> est = solve(meas);
  if (!est) return std::nullopt;

  // NLOS rejection: while the fit is poor and we can spare an anchor,
  // drop the one with the largest (positive-leaning) residual.
  while (meas.size() > 4 &&
         geom::range_rms_residual(meas, *est) >
             config_.outlier_rms_threshold_ft) {
    std::size_t worst = 0;
    double worst_abs = -1.0;
    for (std::size_t i = 0; i < meas.size(); ++i) {
      const double resid =
          std::abs(geom::distance(*est, meas[i].anchor) - meas[i].distance);
      if (resid > worst_abs) {
        worst_abs = resid;
        worst = i;
      }
    }
    meas.erase(meas.begin() + static_cast<std::ptrdiff_t>(worst));
    const auto retry = solve(meas);
    if (!retry) break;
    est = retry;
  }
  return bounds_.clamp(*est);
}

}  // namespace loctk::core

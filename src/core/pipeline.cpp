#include "core/pipeline.hpp"

namespace loctk::core {

traindb::TrainingDatabase Testbed::train(
    const wiscan::LocationMap& map, int scans, std::uint64_t seed,
    const traindb::GeneratorConfig& config) const {
  radio::Scanner scanner = make_scanner(seed);
  wiscan::SurveyConfig survey_config;
  survey_config.scans_per_location = scans;
  wiscan::SurveyCampaign campaign(scanner, survey_config);
  const wiscan::Collection collection = campaign.run(map);
  return traindb::generate_database(collection, map, config);
}

std::vector<Observation> Testbed::observe(
    const std::vector<geom::Vec2>& truths, int scans,
    std::uint64_t seed) const {
  radio::Scanner scanner = make_scanner(seed);
  return collect_observations(scanner, truths, scans);
}

}  // namespace loctk::core

#pragma once

/// \file ssd_locator.hpp
/// Signal-Strength-Difference fingerprinting: device-independent
/// matching.
///
/// Different NICs report the same channel several dB apart, so a
/// database trained with one device mislocates queries from another —
/// every reading is shifted by the device pair's offset. The SSD
/// family of methods (referenced in the fingerprinting literature the
/// paper sits in) cancels the offset by matching *differences* of
/// signal strengths rather than absolute values: subtracting each
/// signature's own mean leaves a vector any constant offset cannot
/// move. This locator is k-NN in that mean-centered space; with
/// homogeneous hardware it behaves like plain k-NN, and under a
/// device offset it is invariant by construction (see the tests and
/// `bench/ext_device`).

#include "core/compiled_db.hpp"
#include "core/locator.hpp"

namespace loctk::core {

struct SsdConfig {
  int k = 3;
  bool inverse_distance_weighting = true;
  double weighting_epsilon = 1e-3;
  /// A training point must share at least this many APs with the
  /// observation for a meaningful difference signature.
  int min_common_aps = 2;
};

/// k-NN over mean-centered (offset-invariant) signatures. Distances
/// are computed over the APs present on *both* sides, with each
/// side's mean over that common subset removed.
class SsdLocator : public Locator {
 public:
  /// `db` must outlive the locator.
  explicit SsdLocator(const traindb::TrainingDatabase& db,
                      SsdConfig config = {});

  /// Shares an existing compilation.
  explicit SsdLocator(std::shared_ptr<const CompiledDatabase> compiled,
                      SsdConfig config = {});

  LocationEstimate locate(const Observation& obs) const override;
  std::string name() const override;

  /// Offset-invariant distance between the observation and a training
  /// point; +infinity when they share fewer than min_common_aps APs.
  /// Reference implementation; locate() runs the same arithmetic as a
  /// masked dense kernel over the compiled matrices.
  double ssd_distance(const Observation& obs,
                      const traindb::TrainingPoint& point) const;

  const SsdConfig& config() const { return config_; }

 private:
  std::shared_ptr<const CompiledDatabase> compiled_;
  SsdConfig config_;
};

}  // namespace loctk::core

#pragma once

/// \file candidate_pruner.hpp
/// Coarse-to-fine candidate selection for the scoring engine.
///
/// Brute-force scoring visits every training point per observation.
/// On campus-scale maps almost all of those rows lose by a mile: a
/// training point that never heard the observation's strongest APs is
/// not going to win the likelihood arg-max. The pruner exploits that
/// with the same inverted-index idea `signal_index` applies to
/// geometric NN search, but specialized to the SoA scoring path:
///
///  1. At build time, a CSR postings list maps each universe slot to
///     the training rows trained on it.
///  2. Per query, take the `strongest_aps` loudest observed in-universe
///     slots and walk their postings to collect candidate rows. Each
///     touched row is then coarse-scored over ALL of the query's
///     observed slots: the negated squared dBm gap, with untrained
///     slots charged against `missing_dbm` — the exact k-NN distance
///     restricted to the observed dimensions, and a penalty-aware
///     proxy for the probabilistic likelihood. Scoring only touched
///     rows keeps the cost O(candidates x observed APs), far below an
///     exact full sweep.
///  3. Keep the best `top_k` rows; the caller scores ONLY those with
///     the exact kernel, so every returned estimate is exactly scored
///     (pruning can change *which* rows compete, never their scores).
///
/// Degenerate-query contract: `select` returns an empty vector — and
/// the caller MUST fall back to the full exact pass — when the
/// database is small enough that pruning cannot shrink the work
/// (point_count <= top_k), when the observation has no finite
/// in-universe AP, or when no training row matches any strong AP.
/// Locators additionally fall back when the pruned pass yields no
/// valid estimate, so enabling pruning can never turn a valid answer
/// into an invalid one.
///
/// ML coarse mode (`PrunerConfig::ml_tables`): the gap metric above is
/// congruent with the k-NN distance but NOT with the probabilistic
/// likelihood at campus cardinality — the likelihood charges a flat
/// `missing_ap_log_penalty` per visibility disagreement, so a sparsely
/// trained row (a corner room hearing a handful of APs) can win the
/// exact arg-max while the gap metric, charging (observed - missing)²
/// per untrained slot, ranks it near dead last and prunes it out.
/// When the consumer supplies its Gaussian tables, the pruner instead
/// seeds candidates from EVERY finite observed slot's postings and
/// coarse-ranks them with the consumer's own score gathered over the
/// observed slots only — mathematically the exact likelihood (the
/// dense kernel's Gaussian terms are zero off the observation, and the
/// penalty terms are closed-form in the counts), at
/// O(candidates x observed APs) cost. Any row sharing at least one AP
/// with the observation is ranked by its true score, so the exact
/// winner can only leave the top-k on a sub-rounding-noise tie.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/compiled_db.hpp"

namespace loctk::core {

/// Per-cell Gaussian constants of the probabilistic kernel, row-major
/// points x row_stride() with exact zeros at untrained slots and in
/// the stride pad:
///   log_pdf(x) = log_norm - (x - mean)² · inv_two_var.
/// Owned by the locator that built them and shared with its pruner
/// (ML coarse mode), so copies of either stay valid.
struct GaussianTables {
  simd::AlignedDoubles log_norm;
  simd::AlignedDoubles inv_two_var;
};

struct PrunerConfig {
  /// How many of the observation's loudest in-universe APs seed the
  /// candidate set.
  int strongest_aps = 4;
  /// Max candidate rows returned for exact scoring.
  int top_k = 32;
  /// Fill level charged when a candidate row never trained an
  /// observed slot — keeps the coarse ranking congruent with the
  /// k-NN distance (KnnConfig::missing_dbm).
  double missing_dbm = -100.0;
  /// When set, switches the coarse rank to ML mode (see file comment):
  /// candidates seed from every finite observed slot and are ranked by
  /// the consumer's own restricted score built from these tables plus
  /// the two knobs below. `strongest_aps` and `missing_dbm` are
  /// ignored in this mode.
  std::shared_ptr<const GaussianTables> ml_tables;
  /// The consumer's ProbabilisticConfig::missing_ap_log_penalty.
  double ml_missing_penalty = -6.0;
  /// The consumer's ProbabilisticConfig::min_common_aps: rows below it
  /// coarse-score -infinity (the exact pass skips them, so they must
  /// not occupy candidate slots).
  int ml_min_common_aps = 1;
};

class CandidatePruner {
 public:
  CandidatePruner(std::shared_ptr<const CompiledDatabase> compiled,
                  PrunerConfig config = {});

  /// Candidate training rows for `q`, sorted ascending (database
  /// order, so downstream scans stay deterministic and prefetchable).
  /// Empty means "degenerate — run the full pass" (see file comment).
  std::vector<std::uint32_t> select(const CompiledObservation& q) const;

  const PrunerConfig& config() const { return config_; }

 private:
  /// The ML-mode selection (config_.ml_tables set): all-observed-slot
  /// candidate union, coarse rank = the consumer's restricted score.
  std::vector<std::uint32_t> select_ml(const CompiledObservation& q,
                                       std::size_t top_k) const;

  std::shared_ptr<const CompiledDatabase> compiled_;
  PrunerConfig config_;
  /// CSR postings: rows trained on slot s live at
  /// postings_[offsets_[s] .. offsets_[s + 1]).
  std::vector<std::uint32_t> postings_;
  std::vector<std::uint32_t> offsets_;
};

}  // namespace loctk::core

#pragma once

/// \file candidate_pruner.hpp
/// Coarse-to-fine candidate selection for the scoring engine.
///
/// Brute-force scoring visits every training point per observation.
/// On campus-scale maps almost all of those rows lose by a mile: a
/// training point that never heard the observation's strongest APs is
/// not going to win the likelihood arg-max. The pruner exploits that
/// with the same inverted-index idea `signal_index` applies to
/// geometric NN search, but specialized to the SoA scoring path:
///
///  1. At build time, a CSR postings list maps each universe slot to
///     the training rows trained on it.
///  2. Per query, take the `strongest_aps` loudest observed in-universe
///     slots and walk their postings to collect candidate rows. Each
///     touched row is then coarse-scored over ALL of the query's
///     observed slots: the negated squared dBm gap, with untrained
///     slots charged against `missing_dbm` — the exact k-NN distance
///     restricted to the observed dimensions, and a penalty-aware
///     proxy for the probabilistic likelihood. Scoring only touched
///     rows keeps the cost O(candidates x observed APs), far below an
///     exact full sweep.
///  3. Keep the best `top_k` rows; the caller scores ONLY those with
///     the exact kernel, so every returned estimate is exactly scored
///     (pruning can change *which* rows compete, never their scores).
///
/// Degenerate-query contract: `select` returns an empty vector — and
/// the caller MUST fall back to the full exact pass — when the
/// database is small enough that pruning cannot shrink the work
/// (point_count <= top_k), when the observation has no finite
/// in-universe AP, or when no training row matches any strong AP.
/// Locators additionally fall back when the pruned pass yields no
/// valid estimate, so enabling pruning can never turn a valid answer
/// into an invalid one.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/compiled_db.hpp"

namespace loctk::core {

struct PrunerConfig {
  /// How many of the observation's loudest in-universe APs seed the
  /// candidate set.
  int strongest_aps = 4;
  /// Max candidate rows returned for exact scoring.
  int top_k = 32;
  /// Fill level charged when a candidate row never trained an
  /// observed slot — keeps the coarse ranking congruent with the
  /// k-NN distance (KnnConfig::missing_dbm) and penalty-aware for
  /// the probabilistic likelihood.
  double missing_dbm = -100.0;
};

class CandidatePruner {
 public:
  CandidatePruner(std::shared_ptr<const CompiledDatabase> compiled,
                  PrunerConfig config = {});

  /// Candidate training rows for `q`, sorted ascending (database
  /// order, so downstream scans stay deterministic and prefetchable).
  /// Empty means "degenerate — run the full pass" (see file comment).
  std::vector<std::uint32_t> select(const CompiledObservation& q) const;

  const PrunerConfig& config() const { return config_; }

 private:
  std::shared_ptr<const CompiledDatabase> compiled_;
  PrunerConfig config_;
  /// CSR postings: rows trained on slot s live at
  /// postings_[offsets_[s] .. offsets_[s + 1]).
  std::vector<std::uint32_t> postings_;
  std::vector<std::uint32_t> offsets_;
};

}  // namespace loctk::core

#include "core/observation.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace loctk::core {

namespace {

// Shared grouping: BSSID -> readings, already sorted by the map.
std::vector<ObservedAp> to_aps(
    const std::map<std::string, std::vector<double>>& grouped) {
  std::vector<ObservedAp> aps;
  aps.reserve(grouped.size());
  for (const auto& [bssid, samples] : grouped) {
    ObservedAp ap;
    ap.bssid = bssid;
    ap.sample_count = static_cast<std::uint32_t>(samples.size());
    double sum = 0.0;
    for (const double s : samples) sum += s;
    ap.mean_dbm =
        samples.empty() ? 0.0 : sum / static_cast<double>(samples.size());
    ap.samples_dbm = samples;
    aps.push_back(std::move(ap));
  }
  return aps;
}

}  // namespace

Observation Observation::from_scans(
    const std::vector<radio::ScanRecord>& scans) {
  std::map<std::string, std::vector<double>> grouped;
  for (const radio::ScanRecord& scan : scans) {
    for (const radio::ScanSample& s : scan.samples) {
      grouped[s.bssid].push_back(s.rssi_dbm);
    }
  }
  Observation obs;
  obs.aps_ = to_aps(grouped);
  return obs;
}

Observation Observation::from_entries(
    const std::vector<wiscan::WiScanEntry>& entries) {
  std::map<std::string, std::vector<double>> grouped;
  for (const wiscan::WiScanEntry& e : entries) {
    grouped[e.bssid].push_back(e.rssi_dbm);
  }
  Observation obs;
  obs.aps_ = to_aps(grouped);
  return obs;
}

bool Observation::is_finite() const {
  for (const ObservedAp& ap : aps_) {
    if (!std::isfinite(ap.mean_dbm)) return false;
    for (const double s : ap.samples_dbm) {
      if (!std::isfinite(s)) return false;
    }
  }
  return true;
}

const ObservedAp* Observation::find(const std::string& bssid) const {
  const auto it = std::lower_bound(
      aps_.begin(), aps_.end(), bssid,
      [](const ObservedAp& a, const std::string& b) { return a.bssid < b; });
  if (it == aps_.end() || it->bssid != bssid) return nullptr;
  return &*it;
}

std::optional<double> Observation::mean_of(const std::string& bssid) const {
  const ObservedAp* ap = find(bssid);
  if (!ap) return std::nullopt;
  return ap->mean_dbm;
}

std::vector<double> Observation::signature(
    const std::vector<std::string>& universe, double missing_dbm) const {
  std::vector<double> out;
  out.reserve(universe.size());
  for (const std::string& bssid : universe) {
    const auto m = mean_of(bssid);
    out.push_back(m.value_or(missing_dbm));
  }
  return out;
}

}  // namespace loctk::core

#include "core/candidate_pruner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace loctk::core {

CandidatePruner::CandidatePruner(
    std::shared_ptr<const CompiledDatabase> compiled, PrunerConfig config)
    : compiled_(std::move(compiled)), config_(config) {
  config_.strongest_aps = std::max(1, config_.strongest_aps);
  config_.top_k = std::max(1, config_.top_k);

  const std::size_t points = compiled_->point_count();
  const std::size_t universe = compiled_->universe_size();
  offsets_.assign(universe + 1, 0);
  for (std::size_t p = 0; p < points; ++p) {
    const double* mask = compiled_->mask_row(p);
    for (std::size_t u = 0; u < universe; ++u) {
      if (mask[u] != 0.0) ++offsets_[u + 1];
    }
  }
  for (std::size_t u = 0; u < universe; ++u) {
    offsets_[u + 1] += offsets_[u];
  }
  postings_.resize(offsets_[universe]);
  std::vector<std::uint32_t> cursor(offsets_.begin(),
                                    offsets_.end() - 1);
  for (std::size_t p = 0; p < points; ++p) {
    const double* mask = compiled_->mask_row(p);
    for (std::size_t u = 0; u < universe; ++u) {
      if (mask[u] != 0.0) {
        postings_[cursor[u]++] = static_cast<std::uint32_t>(p);
      }
    }
  }
}

std::vector<std::uint32_t> CandidatePruner::select(
    const CompiledObservation& q) const {
  const std::size_t points = compiled_->point_count();
  const auto top_k = static_cast<std::size_t>(config_.top_k);
  // Pruning that cannot shrink the work is pure overhead: degenerate.
  if (points <= top_k) return {};
  if (config_.ml_tables) return select_ml(q, top_k);

  // The loudest finite in-universe slots seed the candidate set; a
  // query with none (empty, fully out-of-universe, or non-finite) is
  // degenerate and must take the full pass.
  std::vector<std::uint32_t> strongest;
  strongest.reserve(q.slots.size());
  for (const std::uint32_t slot : q.slots) {
    if (std::isfinite(q.mean_dbm[slot])) strongest.push_back(slot);
  }
  if (strongest.empty()) return {};
  const std::size_t n_strong = std::min<std::size_t>(
      static_cast<std::size_t>(config_.strongest_aps), strongest.size());
  std::partial_sort(strongest.begin(),
                    strongest.begin() + static_cast<std::ptrdiff_t>(n_strong),
                    strongest.end(),
                    [&](std::uint32_t a, std::uint32_t b) {
                      return q.mean_dbm[a] > q.mean_dbm[b];
                    });
  strongest.resize(n_strong);

  // Gather every row posted under a strong slot. Touch order is
  // deterministic (slot then database order), so ties in the
  // top-k selection below resolve identically run to run.
  std::vector<std::uint8_t> seen(points, 0);
  std::vector<std::uint32_t> touched;
  for (const std::uint32_t slot : strongest) {
    for (std::uint32_t i = offsets_[slot]; i < offsets_[slot + 1]; ++i) {
      const std::uint32_t p = postings_[i];
      if (!seen[p]) {
        seen[p] = 1;
        touched.push_back(p);
      }
    }
  }
  if (touched.empty()) return {};

  // Coarse-score each touched row over ALL finite observed slots: the
  // negated squared-dBm gap with untrained slots charged against the
  // missing fill. This is the exact k-NN distance restricted to the
  // observed dimensions, so near rows cannot be misranked by the
  // handful of slots that seeded the candidate set.
  std::vector<double> coarse(points, 0.0);
  for (const std::uint32_t p : touched) {
    const double* mean = compiled_->mean_row(p);
    const double* mask = compiled_->mask_row(p);
    double sum2 = 0.0;
    for (const std::uint32_t slot : q.slots) {
      const double q_dbm = q.mean_dbm[slot];
      if (!std::isfinite(q_dbm)) continue;
      const double trained =
          mask[slot] != 0.0 ? mean[slot] : config_.missing_dbm;
      const double d = q_dbm - trained;
      sum2 += d * d;
    }
    coarse[p] = -sum2;
  }

  if (touched.size() > top_k) {
    std::nth_element(touched.begin(),
                     touched.begin() + static_cast<std::ptrdiff_t>(top_k),
                     touched.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return coarse[a] > coarse[b];
                     });
    touched.resize(top_k);
  }
  std::sort(touched.begin(), touched.end());
  return touched;
}

std::vector<std::uint32_t> CandidatePruner::select_ml(
    const CompiledObservation& q, std::size_t top_k) const {
  // Every row sharing at least one finite observed slot is a
  // candidate: the exact pass skips rows with zero common APs
  // (min_common_aps >= 1), so no row outside this union can win the
  // arg-max, and every row inside it gets ranked by its true score.
  const std::size_t points = compiled_->point_count();
  std::vector<std::uint8_t> seen(points, 0);
  std::vector<std::uint32_t> touched;
  for (const std::uint32_t slot : q.slots) {
    if (!std::isfinite(q.mean_dbm[slot])) continue;
    for (std::uint32_t i = offsets_[slot]; i < offsets_[slot + 1]; ++i) {
      const std::uint32_t p = postings_[i];
      if (!seen[p]) {
        seen[p] = 1;
        touched.push_back(p);
      }
    }
  }
  if (touched.empty()) return {};

  // The consumer's own likelihood, gathered over the observed slots
  // only. The dense kernel's Gaussian terms vanish off the
  // observation and its penalty count is closed-form in
  // (trained, observed, common), so this equals the exact score up to
  // summation order — a sparse row's flat penalties rank it exactly
  // where the arg-max will.
  const std::size_t stride = compiled_->row_stride();
  const GaussianTables& tables = *config_.ml_tables;
  const double obs_count =
      static_cast<double>(q.in_universe() + q.outside_universe);
  std::vector<double> coarse(points, 0.0);
  for (const std::uint32_t p : touched) {
    const double* mean = compiled_->mean_row(p);
    const double* mask = compiled_->mask_row(p);
    const double* log_norm = tables.log_norm.data() + p * stride;
    const double* inv_two_var = tables.inv_two_var.data() + p * stride;
    double gauss = 0.0;
    int common = 0;
    for (const std::uint32_t slot : q.slots) {
      const double q_dbm = q.mean_dbm[slot];
      if (!std::isfinite(q_dbm) || mask[slot] == 0.0) continue;
      const double d = q_dbm - mean[slot];
      gauss += log_norm[slot] - inv_two_var[slot] * d * d;
      ++common;
    }
    if (common < config_.ml_min_common_aps) {
      coarse[p] = -std::numeric_limits<double>::infinity();
      continue;
    }
    const double penalties =
        static_cast<double>(compiled_->trained_count(p)) + obs_count -
        2.0 * static_cast<double>(common);
    coarse[p] = gauss + config_.ml_missing_penalty * penalties;
  }

  if (touched.size() > top_k) {
    std::nth_element(touched.begin(),
                     touched.begin() + static_cast<std::ptrdiff_t>(top_k),
                     touched.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return coarse[a] > coarse[b];
                     });
    touched.resize(top_k);
  }
  std::sort(touched.begin(), touched.end());
  return touched;
}

}  // namespace loctk::core

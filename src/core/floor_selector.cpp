#include "core/floor_selector.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "traindb/generator.hpp"
#include "wiscan/survey.hpp"

namespace loctk::core {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

std::vector<std::shared_ptr<const CompiledDatabase>> compile_floors(
    const std::vector<const traindb::TrainingDatabase*>& databases) {
  std::vector<std::shared_ptr<const CompiledDatabase>> compiled;
  compiled.reserve(databases.size());
  for (const traindb::TrainingDatabase* db : databases) {
    if (db == nullptr) {
      throw std::invalid_argument("FloorSelector: null database");
    }
    compiled.push_back(CompiledDatabase::compile(*db));
  }
  return compiled;
}

}  // namespace

FloorSelector::FloorSelector(
    std::vector<const traindb::TrainingDatabase*> databases,
    ProbabilisticConfig config)
    : FloorSelector(compile_floors(databases), config) {}

FloorSelector::FloorSelector(
    std::vector<std::shared_ptr<const CompiledDatabase>> compiled,
    ProbabilisticConfig config) {
  if (compiled.empty()) {
    throw std::invalid_argument("FloorSelector: no databases");
  }
  locators_.reserve(compiled.size());
  trained_counts_.reserve(compiled.size());
  for (std::shared_ptr<const CompiledDatabase>& db : compiled) {
    if (db == nullptr) {
      throw std::invalid_argument("FloorSelector: null database");
    }
    std::unordered_map<std::string, int> counts;
    counts.reserve(db->point_count());
    for (std::size_t p = 0; p < db->point_count(); ++p) {
      counts.emplace(db->point(p).location, db->trained_count(p));
    }
    trained_counts_.push_back(std::move(counts));
    locators_.push_back(
        std::make_unique<ProbabilisticLocator>(std::move(db), config));
  }
}

double FloorSelector::scored_locate(std::size_t f, const Observation& obs,
                                    LocationEstimate* est) const {
  const ProbabilisticLocator& locator = *locators_[f];
  *est = locator.locate(obs);
  // Reject non-finite scores explicitly: one NaN mean reaching a
  // floor's kernel must disqualify that floor, not poison the
  // cross-floor max/softmax folds.
  if (!est->valid || !std::isfinite(est->score)) {
    *est = LocationEstimate{};
    return kNegInf;
  }

  // Per-term normalization. The raw score is a sum over
  //   common + penalties
  // terms, where penalties = trained(winner) + in_universe +
  // outside_universe - 2*common — a count that varies per floor with
  // the floor's AP universe, so raw sums are not cross-floor
  // comparable. Mean log-likelihood per scored term is.
  const CompiledDatabase& compiled = locator.compiled();
  int in_universe = 0;
  for (const ObservedAp& ap : obs.aps()) {
    in_universe += compiled.slot_of(ap.bssid).has_value();
  }
  const int outside = static_cast<int>(obs.ap_count()) - in_universe;
  const auto trained = trained_counts_[f].find(est->location_name);
  const int trained_aps =
      trained == trained_counts_[f].end() ? 0 : trained->second;
  const int common = est->aps_used;
  const int terms =
      common + (trained_aps + in_universe + outside - 2 * common);
  return est->score / static_cast<double>(std::max(terms, 1));
}

std::vector<double> FloorSelector::floor_scores(
    const Observation& obs) const {
  std::vector<double> scores;
  scores.reserve(locators_.size());
  LocationEstimate scratch;
  for (std::size_t f = 0; f < locators_.size(); ++f) {
    scores.push_back(scored_locate(f, obs, &scratch));
  }
  return scores;
}

FloorEstimate FloorSelector::locate(const Observation& obs) const {
  FloorEstimate out;
  if (obs.empty()) return out;

  std::vector<double> scores(locators_.size(), kNegInf);
  std::vector<LocationEstimate> estimates(locators_.size());
  std::size_t best = 0;
  bool any = false;
  for (std::size_t f = 0; f < locators_.size(); ++f) {
    scores[f] = scored_locate(f, obs, &estimates[f]);
    if (scores[f] == kNegInf) continue;  // finite by construction otherwise
    if (!any || scores[f] > scores[best]) {
      best = f;
      any = true;
    }
  }
  if (!any) return out;

  // Softmax confidence over the per-term scores of the viable floors.
  double denom = 0.0;
  for (const double s : scores) {
    if (s != kNegInf) denom += std::exp(s - scores[best]);
  }
  out.valid = true;
  out.floor = best;
  out.estimate = estimates[best];
  out.floor_confidence = denom > 0.0 ? 1.0 / denom : 0.0;
  return out;
}

std::vector<traindb::TrainingDatabase> train_building(
    const radio::Building& building, const wiscan::LocationMap& map,
    int scans_per_point, std::uint64_t seed,
    const radio::ChannelConfig& channel) {
  std::vector<traindb::TrainingDatabase> dbs;
  dbs.reserve(building.floor_count());
  for (std::size_t f = 0; f < building.floor_count(); ++f) {
    const radio::FloorView view(building, f);
    radio::Scanner scanner(view, channel,
                           seed + f * 0x1009u + 1);
    wiscan::SurveyConfig cfg;
    cfg.scans_per_location = scans_per_point;
    wiscan::SurveyCampaign campaign(scanner, cfg);
    const wiscan::Collection collection = campaign.run(map);
    traindb::GeneratorConfig gen;
    gen.site_name = "floor-" + std::to_string(f);
    dbs.push_back(traindb::generate_database(collection, map, gen));
  }
  return dbs;
}

std::vector<traindb::TrainingDatabase> train_campus(
    const radio::Campus& campus, int scans_per_point, std::uint64_t seed,
    const radio::ChannelConfig& channel) {
  std::vector<traindb::TrainingDatabase> dbs;
  dbs.reserve(campus.floor_count());
  for (std::size_t b = 0; b < campus.building_count(); ++b) {
    const std::vector<geom::Vec2> rooms = campus.room_centers(b);
    for (std::size_t f = 0; f < campus.floors_per_building(); ++f) {
      const std::size_t flat = campus.flat_floor(b, f);
      const std::string tag =
          "B" + std::to_string(b) + "F" + std::to_string(f);
      wiscan::LocationMap map;
      for (std::size_t r = 0; r < rooms.size(); ++r) {
        map.add(tag + "-R" + std::to_string(r), rooms[r]);
      }
      const radio::CampusFloorView view(campus, b, f);
      radio::Scanner scanner(view, channel, seed + flat * 0x1009u + 1);
      wiscan::SurveyConfig cfg;
      cfg.scans_per_location = scans_per_point;
      wiscan::SurveyCampaign campaign(scanner, cfg);
      const wiscan::Collection collection = campaign.run(map);
      traindb::GeneratorConfig gen;
      gen.site_name = tag;
      dbs.push_back(traindb::generate_database(collection, map, gen));
    }
  }
  return dbs;
}

traindb::TrainingDatabase merge_floor_databases(
    const std::vector<traindb::TrainingDatabase>& floors,
    std::string site_name) {
  std::vector<traindb::TrainingPoint> points;
  std::size_t total = 0;
  for (const traindb::TrainingDatabase& db : floors) total += db.size();
  points.reserve(total);
  for (const traindb::TrainingDatabase& db : floors) {
    points.insert(points.end(), db.points().begin(), db.points().end());
  }
  return traindb::TrainingDatabase::from_points(std::move(points),
                                                std::move(site_name));
}

}  // namespace loctk::core

#include "core/floor_selector.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "traindb/generator.hpp"
#include "wiscan/survey.hpp"

namespace loctk::core {

FloorSelector::FloorSelector(
    std::vector<const traindb::TrainingDatabase*> databases,
    ProbabilisticConfig config) {
  if (databases.empty()) {
    throw std::invalid_argument("FloorSelector: no databases");
  }
  locators_.reserve(databases.size());
  for (const traindb::TrainingDatabase* db : databases) {
    if (db == nullptr) {
      throw std::invalid_argument("FloorSelector: null database");
    }
    locators_.push_back(
        std::make_unique<ProbabilisticLocator>(*db, config));
  }
}

std::vector<double> FloorSelector::floor_scores(
    const Observation& obs) const {
  std::vector<double> scores;
  scores.reserve(locators_.size());
  for (const auto& locator : locators_) {
    double best = -std::numeric_limits<double>::infinity();
    for (const ScoredPoint& sp : locator->score_all(obs)) {
      best = std::max(best, sp.log_likelihood);
    }
    scores.push_back(best);
  }
  return scores;
}

FloorEstimate FloorSelector::locate(const Observation& obs) const {
  FloorEstimate out;
  if (obs.empty()) return out;

  const std::vector<double> scores = floor_scores(obs);
  const auto best_it = std::max_element(scores.begin(), scores.end());
  if (*best_it == -std::numeric_limits<double>::infinity()) return out;
  const auto best =
      static_cast<std::size_t>(std::distance(scores.begin(), best_it));

  const LocationEstimate est = locators_[best]->locate(obs);
  if (!est.valid) return out;

  // Softmax confidence over the per-floor best scores.
  double denom = 0.0;
  for (const double s : scores) {
    if (std::isfinite(s)) denom += std::exp(s - *best_it);
  }
  out.valid = true;
  out.floor = best;
  out.estimate = est;
  out.floor_confidence = denom > 0.0 ? 1.0 / denom : 0.0;
  return out;
}

std::vector<traindb::TrainingDatabase> train_building(
    const radio::Building& building, const wiscan::LocationMap& map,
    int scans_per_point, std::uint64_t seed,
    const radio::ChannelConfig& channel) {
  std::vector<traindb::TrainingDatabase> dbs;
  dbs.reserve(building.floor_count());
  for (std::size_t f = 0; f < building.floor_count(); ++f) {
    const radio::FloorView view(building, f);
    radio::Scanner scanner(view, channel,
                           seed + f * 0x1009u + 1);
    wiscan::SurveyConfig cfg;
    cfg.scans_per_location = scans_per_point;
    wiscan::SurveyCampaign campaign(scanner, cfg);
    const wiscan::Collection collection = campaign.run(map);
    traindb::GeneratorConfig gen;
    gen.site_name = "floor-" + std::to_string(f);
    dbs.push_back(traindb::generate_database(collection, map, gen));
  }
  return dbs;
}

}  // namespace loctk::core

#pragma once

/// \file compiled_db.hpp
/// Dense, cache-friendly compilation of a TrainingDatabase.
///
/// Every fingerprint locator's inner loop walks <training point, AP>
/// pairs. The string-keyed form (`TrainingPoint::find`,
/// `Observation::mean_of`) pays a BSSID comparison per pair, which is
/// fine for the paper's 12-point house but dominates once the radio
/// map grows to campus scale. `CompiledDatabase` interns the BSSID
/// universe to integer slots once and lays the per-pair statistics out
/// as row-major `points x universe` structure-of-arrays matrices, so
/// scoring kernels become flat, branch-light loops over doubles.
///
/// The compiled form is a *view plus derived data*: it keeps a
/// non-owning pointer to the source database (which must outlive it)
/// and all dense matrices. Locators share one compilation through
/// `std::shared_ptr<const CompiledDatabase>`.

#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <vector>

#include "base/simd.hpp"
#include "core/observation.hpp"
#include "traindb/database.hpp"
#include "traindb/generator.hpp"

namespace loctk::core {

/// An Observation lowered onto a compiled universe: dense mean vector,
/// presence mask, and the list of occupied slots. Produced by
/// `CompiledDatabase::compile`; valid only against the database that
/// compiled it, and only while the source Observation is alive (it
/// keeps per-slot pointers for sample-level scoring).
struct CompiledObservation {
  /// Mean dBm per universe slot; 0.0 where the AP was not heard (the
  /// presence mask gates every use, so the fill value never leaks).
  /// 64-byte aligned and padded to the database's row stride so the
  /// SIMD kernels can use unmasked aligned loads.
  simd::AlignedDoubles mean_dbm;
  /// 1.0 where the slot was heard, 0.0 otherwise — kept as doubles so
  /// kernels can multiply instead of branch. Same alignment/padding
  /// as `mean_dbm`; pad cells are 0.0 (never present).
  simd::AlignedDoubles present;
  /// Occupied slot ids, ascending (== BSSID order).
  std::vector<std::uint32_t> slots;
  /// Source aggregate per occupied slot, aligned with `slots`.
  std::vector<const ObservedAp*> slot_aps;
  /// Observed APs whose BSSID is not in the training universe. They
  /// can never match any training point, so locators fold them into
  /// the missing-AP penalty as a per-observation constant.
  int outside_universe = 0;
  /// Total APs in the source observation.
  std::size_t total_aps = 0;

  /// Occupied slots inside the universe.
  int in_universe() const { return static_cast<int>(slots.size()); }
  bool empty() const { return total_aps == 0; }
};

/// One incremental update to a compiled radio map: training points to
/// add or replace, keyed by `TrainingPoint::location`. An upsert whose
/// location already exists replaces that point in place (same row
/// index); a new location appends. Later upserts for the same location
/// within one delta win. This is the unit the fingerprint lifecycle
/// produces — a resurveyed dwell, a crowd-sourced fix — and feeds to
/// `CompiledDatabase::delta_compile`.
struct DatabaseDelta {
  std::vector<traindb::TrainingPoint> upserts;

  bool empty() const { return upserts.empty(); }
};

/// Dense structure-of-arrays form of a TrainingDatabase.
class CompiledDatabase {
 public:
  /// `db` must outlive the compiled form.
  explicit CompiledDatabase(const traindb::TrainingDatabase& db);

  /// Owning form: moves `db` in, so the compiled database is
  /// self-contained — the serve path keeps no string-keyed database
  /// alive anywhere else.
  explicit CompiledDatabase(traindb::TrainingDatabase&& db);

  /// Shared-ownership convenience so several locators reuse one
  /// compilation.
  static std::shared_ptr<const CompiledDatabase> compile(
      const traindb::TrainingDatabase& db) {
    return std::make_shared<const CompiledDatabase>(db);
  }

  /// Shared-ownership owning compilation.
  static std::shared_ptr<const CompiledDatabase> compile_owned(
      traindb::TrainingDatabase db) {
    return std::make_shared<const CompiledDatabase>(std::move(db));
  }

  /// Incremental recompilation: merges `delta` into this database and
  /// compiles the result without re-interning unchanged rows. The
  /// returned database is owning and **oracle-equal** to a from-scratch
  /// `compile_owned(TrainingDatabase::from_points(merged points))`:
  /// same point order (replacements in place, appends at the end), same
  /// sorted universe — new BSSIDs intern new slots and every row
  /// re-pads to the new `row_stride()`; a BSSID whose last occurrence
  /// was replaced away leaves the universe, exactly as a full rebuild
  /// would drop it. Unchanged rows are moved by contiguous-run copies
  /// under the monotonic old-slot → new-slot remap; only
  /// replaced/appended rows pay the per-AP merge. Throws
  /// traindb::DatabaseError on malformed upserts (duplicate location
  /// names are impossible by construction; the underlying from_points
  /// validation still runs).
  std::shared_ptr<const CompiledDatabase> delta_compile(
      const DatabaseDelta& delta) const;

  const traindb::TrainingDatabase& database() const { return *db_; }
  std::size_t point_count() const { return points_; }
  std::size_t universe_size() const { return universe_; }
  /// Doubles per matrix row: `universe_size()` rounded up to a
  /// multiple of 8 (one 64-byte cache line of doubles), so every row
  /// starts 64-byte aligned and vector loads need no tail masking.
  /// Cells in [universe_size(), row_stride()) are pad: mask 0, value
  /// 0.0.
  std::size_t row_stride() const { return stride_; }
  bool empty() const { return points_ == 0; }

  /// Universe slot of `bssid` (the interned id); nullopt when unknown.
  std::optional<std::uint32_t> slot_of(const std::string& bssid) const;

  /// Lowers an observation onto this universe in one sorted merge.
  CompiledObservation compile_observation(const Observation& obs) const;

  /// compile_observation into an existing object, reusing its buffer
  /// capacity — the batched locate path compiles thousands of queries
  /// through per-thread scratch without touching the allocator.
  void compile_observation_into(const Observation& obs,
                                CompiledObservation* out) const;

  /// Row-major accessors; each row has `universe_size()` meaningful
  /// doubles followed by zero pad up to `row_stride()`. Every row
  /// pointer is 64-byte aligned.
  const double* mean_row(std::size_t point) const {
    return mean_.data() + point * stride_;
  }
  const double* stddev_row(std::size_t point) const {
    return stddev_.data() + point * stride_;
  }
  /// Presence as a 1.0/0.0 multiplicative mask (exact 0.0 in pad).
  const double* mask_row(std::size_t point) const {
    return mask_.data() + point * stride_;
  }
  /// Sample counts as doubles (0 where absent) — pooled-variance
  /// weights.
  const double* weight_row(std::size_t point) const {
    return weight_.data() + point * stride_;
  }

  /// APs trained at `point` (row popcount).
  int trained_count(std::size_t point) const {
    return trained_count_[point];
  }

  const traindb::TrainingPoint& point(std::size_t i) const {
    return db_->points()[i];
  }

 private:
  /// Delta build: takes the merged database plus the compilation it
  /// evolved from and the per-row changed flags (indices >= base row
  /// count are appended). Used only by delta_compile.
  CompiledDatabase(traindb::TrainingDatabase&& merged,
                   const CompiledDatabase& base,
                   const std::vector<bool>& row_changed);

  void build_matrices();
  /// Interns one point's per-AP stats into the row at `base` (row
  /// already zeroed) against db_'s universe; returns the trained-AP
  /// count for the row.
  int compile_row(const traindb::TrainingPoint& tp, std::size_t base);
  void delta_build(const CompiledDatabase& base,
                   const std::vector<bool>& row_changed);

  /// Set only by the owning constructor; db_ then points into it.
  std::shared_ptr<const traindb::TrainingDatabase> owned_;
  const traindb::TrainingDatabase* db_;  // non-owning
  std::size_t points_ = 0;
  std::size_t universe_ = 0;
  /// Padded row stride (simd::padded_stride(universe_)).
  std::size_t stride_ = 0;
  simd::AlignedDoubles mean_;
  simd::AlignedDoubles stddev_;
  simd::AlignedDoubles mask_;
  simd::AlignedDoubles weight_;
  std::vector<int> trained_count_;
};

/// Direct ingest-to-serve build: aggregates a wi-scan collection into
/// training points (fanned out over `pool` when given), interns the
/// BSSID universe in one bulk pass, and compiles the dense matrices —
/// the string-keyed TrainingDatabase exists only as the owned
/// interior of the result, never as a separately managed intermediate.
/// Exactly equivalent to generate_database(...) + compile(...).
std::shared_ptr<const CompiledDatabase> compile_collection(
    const wiscan::Collection& collection, const wiscan::LocationMap& map,
    const traindb::GeneratorConfig& config = {},
    traindb::GeneratorReport* report = nullptr,
    concurrency::ThreadPool* pool = nullptr);

/// Serve-path bootstrap: maps a `.ltdb` file read-only, decodes it
/// out of the mapped buffer, and compiles — one call from cold disk
/// to scoring-ready matrices. Throws traindb::CodecError on
/// missing/corrupt input.
std::shared_ptr<const CompiledDatabase> load_compiled_database(
    const std::filesystem::path& path);

}  // namespace loctk::core

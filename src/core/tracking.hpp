#pragma once

/// \file tracking.hpp
/// Sequential filtering of a moving client.
///
/// Paper §6 item 2: "We will borrow the idea of some client-tracking
/// algorithm, which use the combination of the historical location
/// value and the current signal strength value to derive the current
/// location. Moreover, we will use more powerful statistic tool, such
/// as Bayesian-filter." Two fulfillments:
///
///  * `KalmanTracker` — constant-velocity Kalman filter smoothing the
///    position stream of any base `Locator`;
///  * `ParticleFilterTracker` — a full Bayesian filter whose
///    measurement model is the interpolated `SignalField`
///    likelihood, with a random-walk motion model.

#include <memory>
#include <optional>

#include "core/locator.hpp"
#include "core/signal_field.hpp"
#include "geom/rect.hpp"
#include "stats/rng.hpp"

namespace loctk::core {

/// --- Kalman ---------------------------------------------------------

struct KalmanConfig {
  /// Process noise: std-dev of the unknown acceleration (ft/s²).
  double accel_sigma = 1.5;
  /// Measurement noise: std-dev of the base locator's error (ft).
  double measurement_sigma_ft = 8.0;
  /// Default time between updates (s) — the fallback step used by the
  /// dt-less update()/predict() and whenever a caller-supplied dt is
  /// rejected (non-positive or non-finite). Real 802.11 scan streams
  /// are irregular; prefer the explicit-dt / timestamped entry points
  /// so covariance propagation weights the velocity model by the
  /// actual spacing.
  double dt_s = 1.0;
};

/// Constant-velocity Kalman filter over 2-D positions. State is
/// (x, y, vx, vy); the two axes decouple, so the implementation runs
/// two independent 2-state filters.
class KalmanTracker {
 public:
  explicit KalmanTracker(KalmanConfig config = {});

  /// Processes one raw position fix; returns the filtered position.
  /// The first fix initializes the state verbatim. The dt-less form
  /// uses `config.dt_s`; the explicit form propagates the motion model
  /// by `dt_s` seconds (rejected — i.e. replaced by `config.dt_s` —
  /// when non-positive or non-finite).
  geom::Vec2 update(geom::Vec2 measured);
  geom::Vec2 update(geom::Vec2 measured, double dt_s);

  /// Timestamped form: the step is derived from the previous
  /// timestamped call's clock (`t_s - last_t`); the first call (or a
  /// non-increasing / non-finite timestamp) falls back to
  /// `config.dt_s`. This is what a live scan feed should use — 802.11
  /// scan spacing is irregular, and a fixed dt mis-weights the
  /// velocity model across gaps.
  geom::Vec2 update_at(geom::Vec2 measured, double t_s);

  /// Advances the motion model without a measurement (the base
  /// locator returned invalid); returns the predicted position.
  /// Same dt semantics as update().
  geom::Vec2 predict();
  geom::Vec2 predict(double dt_s);
  geom::Vec2 predict_at(double t_s);

  bool initialized() const { return initialized_; }
  geom::Vec2 position() const;
  geom::Vec2 velocity() const;

  /// Magnitude (ft) of the most recent measurement innovation — the
  /// distance between the predicted and measured position at the last
  /// update(). 0 before the second update. Exported by
  /// LocationService as the `service.kalman.innovation_ft` gauge.
  double last_innovation_ft() const { return last_innovation_ft_; }

  /// One axis' covariance (position var, position-velocity cov,
  /// velocity var) — observable uncertainty for tests and metrics.
  struct AxisCovariance {
    double p00 = 0.0, p01 = 0.0, p11 = 0.0;
  };
  AxisCovariance covariance_x() const;
  AxisCovariance covariance_y() const;

  void reset();

 private:
  struct Axis {
    double x = 0.0;   // position
    double v = 0.0;   // velocity
    double p00 = 1.0, p01 = 0.0, p11 = 1.0;  // covariance
  };
  /// config.dt_s when dt_s is non-positive or non-finite.
  double sanitize_dt(double dt_s) const;
  /// dt from a wall-clock timestamp against last_time_ (fallback
  /// config.dt_s), advancing last_time_ for monotone inputs.
  double dt_from_timestamp(double t_s);
  void predict_axis(Axis& a, double dt_s) const;
  void update_axis(Axis& a, double z) const;

  KalmanConfig config_;
  Axis ax_, ay_;
  bool initialized_ = false;
  double last_innovation_ft_ = 0.0;
  std::optional<double> last_time_;
};

/// Convenience: a Locator that pipes another locator through a
/// KalmanTracker (stateful; call locate() once per time step).
class TrackedLocator : public Locator {
 public:
  TrackedLocator(const Locator& base, KalmanConfig config = {})
      : base_(&base), tracker_(config) {}

  LocationEstimate locate(const Observation& obs) const override;
  std::string name() const override { return base_->name() + "+kalman"; }

  void reset() { tracker_.reset(); }

 private:
  const Locator* base_;  // non-owning
  mutable KalmanTracker tracker_;
};

/// --- Particle filter --------------------------------------------------

struct ParticleFilterConfig {
  SignalFieldConfig field;
  int particle_count = 400;
  /// Random-walk motion std-dev per step (ft).
  double motion_sigma_ft = 3.0;
  /// Resample when the effective sample size falls below this
  /// fraction of the particle count.
  double resample_threshold = 0.5;
  std::uint64_t seed = 0xFEEDFACE;
};

/// Bootstrap (sequential importance resampling) particle filter.
class ParticleFilterTracker {
 public:
  /// Particles are confined to `bounds` (the site footprint).
  ParticleFilterTracker(const traindb::TrainingDatabase& db,
                        geom::Rect bounds,
                        ParticleFilterConfig config = {});

  /// One predict-update-estimate cycle; returns the weighted-mean
  /// position.
  geom::Vec2 step(const Observation& obs);

  /// Weighted mean of the current particle cloud.
  geom::Vec2 estimate() const;

  /// Effective sample size of the current weights.
  double effective_sample_size() const;

  /// Scatter particles uniformly over the bounds again.
  void reset();

  int particle_count() const {
    return static_cast<int>(particles_.size());
  }

 private:
  void resample();

  SignalField field_;
  geom::Rect bounds_;
  ParticleFilterConfig config_;
  stats::Rng rng_;
  std::vector<geom::Vec2> particles_;
  std::vector<double> weights_;
};

}  // namespace loctk::core

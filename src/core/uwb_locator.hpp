#pragma once

/// \file uwb_locator.hpp
/// Position from UWB ranges: the paper's §6 item 3 end-to-end.
///
/// Unlike the RSSI locators, UWB needs no training phase at all — the
/// ranges are distances already. The locator averages repeated rounds
/// per anchor (timing noise is zero-mean), optionally de-weights NLOS
/// suspects (ranges that disagree with the consensus), and solves by
/// least squares + Gauss-Newton. This is the "most precise location
/// estimation requirements" tier the paper reserves UWB for.

#include <optional>
#include <vector>

#include "geom/lateration.hpp"
#include "geom/rect.hpp"
#include "radio/uwb.hpp"

namespace loctk::core {

struct UwbLocatorConfig {
  /// Iteratively drop the worst-residual anchor while the RMS range
  /// residual exceeds this (feet) and >= 4 anchors remain — a simple
  /// NLOS rejection (NLOS bias is always positive and large).
  double outlier_rms_threshold_ft = 2.0;
  /// Clamp estimates to this margin beyond the site footprint.
  double clamp_margin_ft = 10.0;
};

/// The UWB position solver.
class UwbLocator {
 public:
  UwbLocator(geom::Rect site_footprint, UwbLocatorConfig config = {})
      : bounds_(site_footprint.inflated(config.clamp_margin_ft)),
        config_(config) {}

  /// Position from one or more ranging rounds; nullopt when fewer
  /// than 3 distinct anchors responded.
  std::optional<geom::Vec2> locate(
      const std::vector<radio::UwbRange>& ranges) const;

  /// Exposed for tests: per-anchor averaged measurements after the
  /// rounds are merged.
  static std::vector<geom::RangeMeasurement> average_by_anchor(
      const std::vector<radio::UwbRange>& ranges);

 private:
  geom::Rect bounds_;
  UwbLocatorConfig config_;
};

}  // namespace loctk::core

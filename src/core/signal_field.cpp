#include "core/signal_field.hpp"

#include <cmath>

#include "stats/gaussian.hpp"

namespace loctk::core {

SignalField::SignalField(const traindb::TrainingDatabase& db,
                         SignalFieldConfig config)
    : db_(&db), config_(config) {}

std::optional<FieldSample> SignalField::sample(const std::string& bssid,
                                               geom::Vec2 pos) const {
  if (!db_->bssid_index(bssid).has_value()) return std::nullopt;
  double w_sum = 0.0;
  double mean_sum = 0.0;
  double var_sum = 0.0;
  double vis_sum = 0.0;
  bool any = false;

  const double max_d2 =
      config_.max_influence_ft * config_.max_influence_ft;
  for (const traindb::TrainingPoint& tp : db_->points()) {
    const double d2 = geom::distance2(tp.position, pos);
    if (d2 > max_d2) continue;

    const traindb::ApStatistics* s = tp.find(bssid);
    // A training point inside range that never heard the AP still
    // weighs into visibility (with zero), so coverage edges are soft.
    const double d = std::sqrt(d2);
    if (d < 1e-6) {
      // Exactly on a training point: return its stats verbatim.
      if (!s) return FieldSample{0.0, config_.sigma_floor_db, 0.0};
      return FieldSample{
          s->mean_dbm,
          std::max(s->stddev_db, config_.sigma_floor_db),
          s->visibility()};
    }
    const double w = 1.0 / std::pow(d, config_.idw_power);
    if (s) {
      mean_sum += w * s->mean_dbm;
      var_sum += w * s->stddev_db * s->stddev_db;
      vis_sum += w * s->visibility();
      w_sum += w;
      any = true;
    } else {
      vis_sum += 0.0;
      w_sum += w;
    }
  }
  if (!any || w_sum <= 0.0) return std::nullopt;

  FieldSample out;
  out.mean_dbm = mean_sum / w_sum;
  out.sigma_db =
      std::max(std::sqrt(var_sum / w_sum), config_.sigma_floor_db);
  out.visibility = vis_sum / w_sum;
  return out;
}

double SignalField::log_likelihood(const Observation& obs,
                                   geom::Vec2 pos) const {
  double total = 0.0;
  for (const std::string& bssid : db_->bssid_universe()) {
    const auto field = sample(bssid, pos);
    const auto observed = obs.mean_of(bssid);
    if (field && observed && field->visibility > 0.05) {
      const stats::Gaussian g{field->mean_dbm, field->sigma_db};
      total += g.log_pdf(*observed);
    } else if (static_cast<bool>(observed) !=
               (field.has_value() && field->visibility > 0.5)) {
      total += config_.missing_ap_log_penalty;
    }
  }
  return total;
}

}  // namespace loctk::core

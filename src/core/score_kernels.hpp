#pragma once

/// \file score_kernels.hpp
/// The v2 scoring kernels, written once against the 4-lane vector
/// interface from base/simd.hpp and instantiated per backend.
///
/// Each kernel consumes 64-byte-aligned rows whose stride is a
/// multiple of simd::kLanes (CompiledDatabase pads its SoA matrices
/// and compiled observations; see `CompiledDatabase::row_stride`), so
/// the loops below use aligned full-width loads with no scalar tail.
/// Pad cells carry mask = 0 and value 0.0, which makes every padded
/// term an exact +/-0.0 — they cannot perturb the sums.
///
/// Bit-compatibility contract: a kernel instantiated with the native
/// backend (simd::Vec4d) produces bit-identical results to the same
/// kernel instantiated with simd::ScalarVec4d, because lane semantics
/// and the hsum reduction tree are fixed across backends and the
/// build never enables FP contraction (tests/core_scoring_v2_test.cpp
/// pins this). Relative to the string-keyed reference forms the lane
/// split reassociates the sums, so those comparisons go through the
/// differential oracle's `score_tol` as they always have for the
/// transcendental-bearing paths.

#include <cstddef>

#include "base/simd.hpp"

namespace loctk::core::kernels {

/// Gaussian log-likelihood partials of one compiled observation
/// against one training row (probabilistic locator).
struct ProbRowScore {
  double gauss = 0.0;   ///< masked sum of per-slot log-pdf terms
  double common = 0.0;  ///< number of slots present on both sides
};

/// Mirrors the scalar loop
///   both = mask[u] * present[u];  d = q_mean[u] - mean[u];
///   gauss += both * (log_norm[u] - d*d*inv_two_var[u]);  common += both;
template <class V>
inline ProbRowScore prob_score_row(const double* mean, const double* mask,
                                   const double* log_norm,
                                   const double* inv_two_var,
                                   const double* q_mean,
                                   const double* q_present,
                                   std::size_t stride) {
  V gauss = V::zero();
  V common = V::zero();
  for (std::size_t u = 0; u < stride; u += simd::kLanes) {
    const V both = V::load(mask + u) * V::load(q_present + u);
    const V d = V::load(q_mean + u) - V::load(mean + u);
    const V term =
        V::load(log_norm + u) - d * d * V::load(inv_two_var + u);
    gauss = gauss + both * term;
    common = common + both;
  }
  return {gauss.hsum(), common.hsum()};
}

/// One training row against four compiled observations at once, with
/// the OBSERVATIONS in the vector lanes: `q_mean_t`/`q_present_t` are
/// slot-major transposed panels (stride x 4 doubles, 64-byte aligned)
/// holding the four queries' values for each universe slot, and lane i
/// of `*gauss`/`*common` is observation i's score. Row table values
/// are broadcast once per slot and shared by all four lanes, and —
/// unlike the slot-major kernel — no horizontal reduction is needed:
/// the per-observation sums come out already separated by lane, so the
/// batched caller's whole epilogue (penalties, clamp, arg-max) stays
/// vectorized too.
///
/// Bit-compatibility with `prob_score_row`: accumulator j gathers the
/// slots congruent to j mod 4 in ascending order — exactly the partial
/// sums the slot-major kernel builds in lane j — and the final combine
/// (a0+a2)+(a1+a3) is the fixed hsum tree. Lane i of the outputs is
/// therefore bit-identical to prob_score_row(...).gauss/.common on
/// observation i, for every backend.
template <class V>
inline void prob_score_row_obs4(const double* mean, const double* mask,
                                const double* log_norm,
                                const double* inv_two_var,
                                const double* q_mean_t,
                                const double* q_present_t,
                                std::size_t stride, V* gauss, V* common) {
  V g0 = V::zero(), c0 = V::zero();
  V g1 = V::zero(), c1 = V::zero();
  V g2 = V::zero(), c2 = V::zero();
  V g3 = V::zero(), c3 = V::zero();
  const auto slot = [&](std::size_t u, V& g, V& c) {
    const V both =
        V::broadcast(mask[u]) * V::load(q_present_t + u * simd::kLanes);
    const V d =
        V::load(q_mean_t + u * simd::kLanes) - V::broadcast(mean[u]);
    const V term =
        V::broadcast(log_norm[u]) - d * d * V::broadcast(inv_two_var[u]);
    g = g + both * term;
    c = c + both;
  };
  for (std::size_t u = 0; u < stride; u += simd::kLanes) {
    slot(u + 0, g0, c0);
    slot(u + 1, g1, c1);
    slot(u + 2, g2, c2);
    slot(u + 3, g3, c3);
  }
  *gauss = (g0 + g2) + (g1 + g3);
  *common = (c0 + c2) + (c1 + c3);
}

/// Plain squared distance between two padded vectors (k-NN family;
/// both sides carry identical pad values so padded deltas are 0.0).
template <class V>
inline double sq_dist_row(const double* row, const double* query,
                          std::size_t stride) {
  V acc = V::zero();
  for (std::size_t u = 0; u < stride; u += simd::kLanes) {
    const V d = V::load(row + u) - V::load(query + u);
    acc = acc + d * d;
  }
  return acc.hsum();
}

/// First SSD pass: size and per-side sums of the common-AP subset.
struct SsdMoments {
  double n = 0.0;      ///< number of common APs
  double sum_o = 0.0;  ///< observed-side sum over common APs
  double sum_t = 0.0;  ///< trained-side sum over common APs
};

template <class V>
inline SsdMoments ssd_moments_row(const double* mean, const double* mask,
                                  const double* q_mean,
                                  const double* q_present,
                                  std::size_t stride) {
  V n = V::zero();
  V sum_o = V::zero();
  V sum_t = V::zero();
  for (std::size_t u = 0; u < stride; u += simd::kLanes) {
    const V m = V::load(mask + u) * V::load(q_present + u);
    n = n + m;
    sum_o = sum_o + m * V::load(q_mean + u);
    sum_t = sum_t + m * V::load(mean + u);
  }
  return {n.hsum(), sum_o.hsum(), sum_t.hsum()};
}

/// Second SSD pass: masked squared distance between the mean-centered
/// signatures. Mirrors `sum2 += m * d * d` with
/// d = (q_mean[u] - mo) - (mean[u] - mt).
template <class V>
inline double ssd_sq_dist_row(const double* mean, const double* mask,
                              const double* q_mean,
                              const double* q_present, double mo,
                              double mt, std::size_t stride) {
  const V vmo = V::broadcast(mo);
  const V vmt = V::broadcast(mt);
  V acc = V::zero();
  for (std::size_t u = 0; u < stride; u += simd::kLanes) {
    const V m = V::load(mask + u) * V::load(q_present + u);
    const V d = (V::load(q_mean + u) - vmo) - (V::load(mean + u) - vmt);
    acc = acc + m * d * d;
  }
  return acc.hsum();
}

/// acc[i] += a * col[i] over a padded column of `n` doubles
/// (histogram locator: one (bin, count) pair folded into the
/// per-point partial sums, points-major).
template <class V>
inline void axpy(double a, const double* col, double* acc, std::size_t n) {
  const V va = V::broadcast(a);
  for (std::size_t i = 0; i < n; i += simd::kLanes) {
    (V::load(acc + i) + va * V::load(col + i)).store(acc + i);
  }
}

/// Folds one scored slot into the histogram locator's per-point
/// accumulators: total[i] += mask[i] * (slot_sum[i] * inv_n) and
/// common[i] += mask[i]. Reproduces the per-point scalar order
/// (ap_sum * inv_n added once per slot, gated by the presence mask).
template <class V>
inline void hist_fold_slot(const double* slot_sum, const double* mask_col,
                           double inv_n, double* total, double* common,
                           std::size_t n) {
  const V scale = V::broadcast(inv_n);
  for (std::size_t i = 0; i < n; i += simd::kLanes) {
    const V m = V::load(mask_col + i);
    (V::load(total + i) + m * (V::load(slot_sum + i) * scale))
        .store(total + i);
    (V::load(common + i) + m).store(common + i);
  }
}

}  // namespace loctk::core::kernels

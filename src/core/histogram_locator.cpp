#include "core/histogram_locator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace loctk::core {

HistogramLocator::HistogramLocator(const traindb::TrainingDatabase& db,
                                   HistogramLocatorConfig config)
    : db_(&db), config_(config) {
  if (!db.has_samples()) {
    throw traindb::DatabaseError(
        "HistogramLocator: database has no raw samples; regenerate with "
        "keep_samples = true");
  }
  const auto bins = static_cast<std::size_t>(std::max(
      1.0, std::ceil((config_.hi_dbm - config_.lo_dbm) /
                     config_.bin_width_db)));
  histograms_.reserve(db.size());
  for (const traindb::TrainingPoint& p : db.points()) {
    std::vector<stats::Histogram> per_ap;
    per_ap.reserve(p.per_ap.size());
    for (const traindb::ApStatistics& s : p.per_ap) {
      stats::Histogram h(config_.lo_dbm, config_.hi_dbm, bins);
      for (const std::int32_t centi : s.samples_centi_dbm) {
        h.add(static_cast<double>(centi) / 100.0);
      }
      per_ap.push_back(std::move(h));
    }
    histograms_.push_back(std::move(per_ap));
  }
}

double HistogramLocator::log_likelihood(const Observation& obs,
                                        std::size_t point_index) const {
  const traindb::TrainingPoint& point = db_->points().at(point_index);
  const auto& hists = histograms_.at(point_index);

  double total = 0.0;
  for (std::size_t a = 0; a < point.per_ap.size(); ++a) {
    const traindb::ApStatistics& s = point.per_ap[a];
    const ObservedAp* oap = obs.find(s.bssid);
    if (!oap) {
      total += config_.missing_ap_log_penalty;
      continue;
    }
    // Score every raw reading; fall back to the mean when the
    // observation kept no raw values.
    if (oap->samples_dbm.empty()) {
      total += std::log(hists[a].probability(oap->mean_dbm, config_.alpha));
    } else {
      // Average the per-reading log-probabilities so a long dwell does
      // not dominate the per-AP terms.
      double ap_sum = 0.0;
      for (const double v : oap->samples_dbm) {
        ap_sum += std::log(hists[a].probability(v, config_.alpha));
      }
      total += ap_sum / static_cast<double>(oap->samples_dbm.size());
    }
  }
  for (const ObservedAp& oap : obs.aps()) {
    if (point.find(oap.bssid) == nullptr) {
      total += config_.missing_ap_log_penalty;
    }
  }
  return total;
}

LocationEstimate HistogramLocator::locate(const Observation& obs) const {
  LocationEstimate est;
  if (obs.empty() || db_->empty()) return est;

  double best = -std::numeric_limits<double>::infinity();
  std::size_t best_idx = 0;
  for (std::size_t i = 0; i < db_->size(); ++i) {
    const double ll = log_likelihood(obs, i);
    if (ll > best) {
      best = ll;
      best_idx = i;
    }
  }
  if (best == -std::numeric_limits<double>::infinity()) return est;

  const traindb::TrainingPoint& p = db_->points()[best_idx];
  est.valid = true;
  est.position = p.position;
  est.location_name = p.location;
  est.score = best;
  est.aps_used = static_cast<int>(obs.ap_count());
  return est;
}

}  // namespace loctk::core

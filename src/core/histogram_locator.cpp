#include "core/histogram_locator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/score_kernels.hpp"

namespace loctk::core {

HistogramLocator::HistogramLocator(const traindb::TrainingDatabase& db,
                                   HistogramLocatorConfig config)
    : HistogramLocator(CompiledDatabase::compile(db), config) {}

HistogramLocator::HistogramLocator(
    std::shared_ptr<const CompiledDatabase> compiled,
    HistogramLocatorConfig config)
    : compiled_(std::move(compiled)), config_(config) {
  const traindb::TrainingDatabase& db = compiled_->database();
  if (!db.has_samples()) {
    throw traindb::DatabaseError(
        "HistogramLocator: database has no raw samples; regenerate with "
        "keep_samples = true");
  }
  bins_ = static_cast<std::size_t>(std::max(
      1.0, std::ceil((config_.hi_dbm - config_.lo_dbm) /
                     config_.bin_width_db)));
  histograms_.reserve(db.size());
  for (const traindb::TrainingPoint& p : db.points()) {
    std::vector<stats::Histogram> per_ap;
    per_ap.reserve(p.per_ap.size());
    for (const traindb::ApStatistics& s : p.per_ap) {
      stats::Histogram h(config_.lo_dbm, config_.hi_dbm, bins_);
      for (const std::int32_t centi : s.samples_centi_dbm) {
        h.add(static_cast<double>(centi) / 100.0);
      }
      per_ap.push_back(std::move(h));
    }
    histograms_.push_back(std::move(per_ap));
  }

  // Flatten every histogram into per-bin log-probabilities, stored
  // points-major: one padded column of training points per
  // <slot, bin> cell, so scoring is SIMD axpys across points instead
  // of per-point table walks. Pad cells stay 0.0 and the transposed
  // mask gates untrained pairs exactly as the row-major walk did.
  const std::size_t points = compiled_->point_count();
  const std::size_t universe = compiled_->universe_size();
  const std::size_t row = bins_ + 1;
  point_stride_ = simd::padded_stride(points);
  cols_.assign(universe * row * point_stride_, 0.0);
  mask_cols_.assign(universe * point_stride_, 0.0);
  trained_counts_.assign(point_stride_, 0.0);
  for (std::size_t p = 0; p < points; ++p) {
    const traindb::TrainingPoint& tp = db.points()[p];
    trained_counts_[p] = static_cast<double>(compiled_->trained_count(p));
    const double* mask = compiled_->mask_row(p);
    for (std::size_t u = 0; u < universe; ++u) {
      mask_cols_[u * point_stride_ + p] = mask[u];
    }
    for (std::size_t a = 0; a < tp.per_ap.size(); ++a) {
      const auto slot = compiled_->slot_of(tp.per_ap[a].bssid);
      if (!slot) continue;
      const stats::Histogram& h = histograms_[p][a];
      const std::size_t base = *slot * row;
      const double denom =
          static_cast<double>(h.total()) +
          config_.alpha * static_cast<double>(bins_);
      for (std::size_t b = 0; b < bins_; ++b) {
        cols_[(base + b) * point_stride_ + p] = std::log(
            (static_cast<double>(h.count(b)) + config_.alpha) / denom);
      }
      cols_[(base + bins_) * point_stride_ + p] =
          std::log(config_.alpha / denom);
    }
  }
}

std::size_t HistogramLocator::bin_of(double x) const {
  if (!(x >= config_.lo_dbm && x < config_.hi_dbm)) return bins_;
  const double width =
      (config_.hi_dbm - config_.lo_dbm) / static_cast<double>(bins_);
  const auto idx =
      static_cast<std::size_t>((x - config_.lo_dbm) / width);
  return std::min(idx, bins_ - 1);  // guard FP edge at hi
}

std::vector<HistogramLocator::SlotBins> HistogramLocator::compile_query(
    const CompiledObservation& q) const {
  std::vector<SlotBins> out;
  out.reserve(q.slots.size());
  std::vector<double> counts(bins_ + 1);
  for (std::size_t i = 0; i < q.slots.size(); ++i) {
    const ObservedAp& ap = *q.slot_aps[i];
    SlotBins sb;
    sb.slot = q.slots[i];
    std::fill(counts.begin(), counts.end(), 0.0);
    if (ap.samples_dbm.empty()) {
      counts[bin_of(ap.mean_dbm)] = 1.0;
      sb.inv_n = 1.0;
    } else {
      for (const double v : ap.samples_dbm) counts[bin_of(v)] += 1.0;
      sb.inv_n = 1.0 / static_cast<double>(ap.samples_dbm.size());
    }
    for (std::uint32_t b = 0; b <= bins_; ++b) {
      if (counts[b] != 0.0) sb.bins.emplace_back(b, counts[b]);
    }
    out.push_back(std::move(sb));
  }
  return out;
}

double HistogramLocator::log_likelihood(const Observation& obs,
                                        std::size_t point_index) const {
  const traindb::TrainingPoint& point =
      compiled_->database().points().at(point_index);
  const auto& hists = histograms_.at(point_index);

  double total = 0.0;
  for (std::size_t a = 0; a < point.per_ap.size(); ++a) {
    const traindb::ApStatistics& s = point.per_ap[a];
    const ObservedAp* oap = obs.find(s.bssid);
    if (!oap) {
      total += config_.missing_ap_log_penalty;
      continue;
    }
    // Score every raw reading; fall back to the mean when the
    // observation kept no raw values.
    if (oap->samples_dbm.empty()) {
      total += std::log(hists[a].probability(oap->mean_dbm, config_.alpha));
    } else {
      // Average the per-reading log-probabilities so a long dwell does
      // not dominate the per-AP terms.
      double ap_sum = 0.0;
      for (const double v : oap->samples_dbm) {
        ap_sum += std::log(hists[a].probability(v, config_.alpha));
      }
      total += ap_sum / static_cast<double>(oap->samples_dbm.size());
    }
  }
  for (const ObservedAp& oap : obs.aps()) {
    if (point.find(oap.bssid) == nullptr) {
      total += config_.missing_ap_log_penalty;
    }
  }
  return total;
}

LocationEstimate HistogramLocator::locate(const Observation& obs) const {
  LocationEstimate est;
  if (obs.empty() || compiled_->empty()) return est;

  const std::size_t points = compiled_->point_count();
  const std::size_t row = bins_ + 1;
  const CompiledObservation q = compiled_->compile_observation(obs);
  const std::vector<SlotBins> query = compile_query(q);

  // Vectorized across training points: each observed (slot, bin,
  // count) is one axpy over the <slot, bin> column, then the slot's
  // partial sums fold into the per-point totals gated by the
  // transposed mask. Per point this reproduces the former row-major
  // walk's accumulation order exactly (bins in sb order, one
  // ap_sum * inv_n added per slot, masked slots contributing exact
  // zeros instead of being skipped).
  simd::AlignedDoubles total(point_stride_, 0.0);
  simd::AlignedDoubles common(point_stride_, 0.0);
  simd::AlignedDoubles slot_sum(point_stride_, 0.0);
  for (const SlotBins& sb : query) {
    std::fill(slot_sum.begin(), slot_sum.end(), 0.0);
    const std::size_t base = sb.slot * row;
    for (const auto& [bin, count] : sb.bins) {
      kernels::axpy<simd::Vec4d>(
          count, cols_.data() + (base + bin) * point_stride_,
          slot_sum.data(), point_stride_);
    }
    kernels::hist_fold_slot<simd::Vec4d>(
        slot_sum.data(), mask_cols_.data() + sb.slot * point_stride_,
        sb.inv_n, total.data(), common.data(), point_stride_);
  }

  // Penalties: trained-but-unheard plus heard-but-untrained (inside
  // or outside the trained universe). All counts are small integers,
  // so the double arithmetic is exact.
  const double observed =
      static_cast<double>(q.in_universe() + q.outside_universe);
  double best = -std::numeric_limits<double>::infinity();
  std::size_t best_idx = 0;
  for (std::size_t p = 0; p < points; ++p) {
    const double penalties =
        trained_counts_[p] + observed - 2.0 * common[p];
    const double score =
        total[p] + config_.missing_ap_log_penalty * penalties;
    if (score > best) {
      best = score;
      best_idx = p;
    }
  }
  if (best == -std::numeric_limits<double>::infinity()) return est;

  const traindb::TrainingPoint& p = compiled_->point(best_idx);
  est.valid = true;
  est.position = p.position;
  est.location_name = p.location;
  est.score = best;
  est.aps_used = static_cast<int>(obs.ap_count());
  return est;
}

}  // namespace loctk::core

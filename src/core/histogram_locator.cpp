#include "core/histogram_locator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace loctk::core {

HistogramLocator::HistogramLocator(const traindb::TrainingDatabase& db,
                                   HistogramLocatorConfig config)
    : HistogramLocator(CompiledDatabase::compile(db), config) {}

HistogramLocator::HistogramLocator(
    std::shared_ptr<const CompiledDatabase> compiled,
    HistogramLocatorConfig config)
    : compiled_(std::move(compiled)), config_(config) {
  const traindb::TrainingDatabase& db = compiled_->database();
  if (!db.has_samples()) {
    throw traindb::DatabaseError(
        "HistogramLocator: database has no raw samples; regenerate with "
        "keep_samples = true");
  }
  bins_ = static_cast<std::size_t>(std::max(
      1.0, std::ceil((config_.hi_dbm - config_.lo_dbm) /
                     config_.bin_width_db)));
  histograms_.reserve(db.size());
  for (const traindb::TrainingPoint& p : db.points()) {
    std::vector<stats::Histogram> per_ap;
    per_ap.reserve(p.per_ap.size());
    for (const traindb::ApStatistics& s : p.per_ap) {
      stats::Histogram h(config_.lo_dbm, config_.hi_dbm, bins_);
      for (const std::int32_t centi : s.samples_centi_dbm) {
        h.add(static_cast<double>(centi) / 100.0);
      }
      per_ap.push_back(std::move(h));
    }
    histograms_.push_back(std::move(per_ap));
  }

  // Flatten every histogram into a dense log-probability row over its
  // universe slot, so scoring is table lookups instead of per-sample
  // smoothing arithmetic.
  const std::size_t universe = compiled_->universe_size();
  const std::size_t row = bins_ + 1;
  tables_.assign(compiled_->point_count() * universe * row, 0.0);
  for (std::size_t p = 0; p < compiled_->point_count(); ++p) {
    const traindb::TrainingPoint& tp = db.points()[p];
    for (std::size_t a = 0; a < tp.per_ap.size(); ++a) {
      const auto slot = compiled_->slot_of(tp.per_ap[a].bssid);
      if (!slot) continue;
      const stats::Histogram& h = histograms_[p][a];
      double* cells = tables_.data() + (p * universe + *slot) * row;
      const double denom =
          static_cast<double>(h.total()) +
          config_.alpha * static_cast<double>(bins_);
      for (std::size_t b = 0; b < bins_; ++b) {
        cells[b] = std::log(
            (static_cast<double>(h.count(b)) + config_.alpha) / denom);
      }
      cells[bins_] = std::log(config_.alpha / denom);
    }
  }
}

std::size_t HistogramLocator::bin_of(double x) const {
  if (!(x >= config_.lo_dbm && x < config_.hi_dbm)) return bins_;
  const double width =
      (config_.hi_dbm - config_.lo_dbm) / static_cast<double>(bins_);
  const auto idx =
      static_cast<std::size_t>((x - config_.lo_dbm) / width);
  return std::min(idx, bins_ - 1);  // guard FP edge at hi
}

std::vector<HistogramLocator::SlotBins> HistogramLocator::compile_query(
    const CompiledObservation& q) const {
  std::vector<SlotBins> out;
  out.reserve(q.slots.size());
  std::vector<double> counts(bins_ + 1);
  for (std::size_t i = 0; i < q.slots.size(); ++i) {
    const ObservedAp& ap = *q.slot_aps[i];
    SlotBins sb;
    sb.slot = q.slots[i];
    std::fill(counts.begin(), counts.end(), 0.0);
    if (ap.samples_dbm.empty()) {
      counts[bin_of(ap.mean_dbm)] = 1.0;
      sb.inv_n = 1.0;
    } else {
      for (const double v : ap.samples_dbm) counts[bin_of(v)] += 1.0;
      sb.inv_n = 1.0 / static_cast<double>(ap.samples_dbm.size());
    }
    for (std::uint32_t b = 0; b <= bins_; ++b) {
      if (counts[b] != 0.0) sb.bins.emplace_back(b, counts[b]);
    }
    out.push_back(std::move(sb));
  }
  return out;
}

double HistogramLocator::log_likelihood(const Observation& obs,
                                        std::size_t point_index) const {
  const traindb::TrainingPoint& point =
      compiled_->database().points().at(point_index);
  const auto& hists = histograms_.at(point_index);

  double total = 0.0;
  for (std::size_t a = 0; a < point.per_ap.size(); ++a) {
    const traindb::ApStatistics& s = point.per_ap[a];
    const ObservedAp* oap = obs.find(s.bssid);
    if (!oap) {
      total += config_.missing_ap_log_penalty;
      continue;
    }
    // Score every raw reading; fall back to the mean when the
    // observation kept no raw values.
    if (oap->samples_dbm.empty()) {
      total += std::log(hists[a].probability(oap->mean_dbm, config_.alpha));
    } else {
      // Average the per-reading log-probabilities so a long dwell does
      // not dominate the per-AP terms.
      double ap_sum = 0.0;
      for (const double v : oap->samples_dbm) {
        ap_sum += std::log(hists[a].probability(v, config_.alpha));
      }
      total += ap_sum / static_cast<double>(oap->samples_dbm.size());
    }
  }
  for (const ObservedAp& oap : obs.aps()) {
    if (point.find(oap.bssid) == nullptr) {
      total += config_.missing_ap_log_penalty;
    }
  }
  return total;
}

LocationEstimate HistogramLocator::locate(const Observation& obs) const {
  LocationEstimate est;
  if (obs.empty() || compiled_->empty()) return est;

  const std::size_t universe = compiled_->universe_size();
  const std::size_t row = bins_ + 1;
  const CompiledObservation q = compiled_->compile_observation(obs);
  const std::vector<SlotBins> query = compile_query(q);

  double best = -std::numeric_limits<double>::infinity();
  std::size_t best_idx = 0;
  for (std::size_t p = 0; p < compiled_->point_count(); ++p) {
    const double* mask = compiled_->mask_row(p);
    const double* point_tables = tables_.data() + p * universe * row;
    double total = 0.0;
    int common = 0;
    for (const SlotBins& sb : query) {
      if (mask[sb.slot] == 0.0) continue;
      const double* cells = point_tables + sb.slot * row;
      double ap_sum = 0.0;
      for (const auto& [bin, count] : sb.bins) {
        ap_sum += count * cells[bin];
      }
      total += ap_sum * sb.inv_n;
      ++common;
    }
    // Penalties: trained-but-unheard plus heard-but-untrained (inside
    // or outside the trained universe).
    const int penalties = compiled_->trained_count(p) + q.in_universe() +
                          q.outside_universe - 2 * common;
    total += config_.missing_ap_log_penalty * static_cast<double>(penalties);
    if (total > best) {
      best = total;
      best_idx = p;
    }
  }
  if (best == -std::numeric_limits<double>::infinity()) return est;

  const traindb::TrainingPoint& p = compiled_->point(best_idx);
  est.valid = true;
  est.position = p.position;
  est.location_name = p.location;
  est.score = best;
  est.aps_used = static_cast<int>(obs.ap_count());
  return est;
}

}  // namespace loctk::core

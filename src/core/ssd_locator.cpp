#include "core/ssd_locator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/score_kernels.hpp"

namespace loctk::core {

SsdLocator::SsdLocator(const traindb::TrainingDatabase& db,
                       SsdConfig config)
    : SsdLocator(CompiledDatabase::compile(db), config) {}

SsdLocator::SsdLocator(std::shared_ptr<const CompiledDatabase> compiled,
                       SsdConfig config)
    : compiled_(std::move(compiled)), config_(config) {
  config_.k = std::max(1, config_.k);
  config_.min_common_aps = std::max(1, config_.min_common_aps);
}

std::string SsdLocator::name() const {
  return "ssd-knn-" + std::to_string(config_.k);
}

double SsdLocator::ssd_distance(
    const Observation& obs, const traindb::TrainingPoint& point) const {
  // Collect readings for APs present on both sides.
  std::vector<double> o, t;
  for (const traindb::ApStatistics& s : point.per_ap) {
    if (const auto observed = obs.mean_of(s.bssid)) {
      o.push_back(*observed);
      t.push_back(s.mean_dbm);
    }
  }
  if (static_cast<int>(o.size()) < config_.min_common_aps) {
    return std::numeric_limits<double>::infinity();
  }
  // Remove each side's mean over the common subset: any constant
  // device offset on the observation cancels exactly.
  double mo = 0.0, mt = 0.0;
  for (std::size_t i = 0; i < o.size(); ++i) {
    mo += o[i];
    mt += t[i];
  }
  mo /= static_cast<double>(o.size());
  mt /= static_cast<double>(t.size());
  double sum2 = 0.0;
  for (std::size_t i = 0; i < o.size(); ++i) {
    const double d = (o[i] - mo) - (t[i] - mt);
    sum2 += d * d;
  }
  return std::sqrt(sum2);
}

LocationEstimate SsdLocator::locate(const Observation& obs) const {
  LocationEstimate est;
  if (obs.empty() || compiled_->empty()) return est;

  const std::size_t points = compiled_->point_count();
  const std::size_t stride = compiled_->row_stride();
  const CompiledObservation q = compiled_->compile_observation(obs);

  struct Neighbor {
    const traindb::TrainingPoint* point;
    double distance;
  };
  std::vector<Neighbor> neighbors;
  neighbors.reserve(points);
  for (std::size_t p = 0; p < points; ++p) {
    const double* mean = compiled_->mean_row(p);
    const double* mask = compiled_->mask_row(p);
    // Pass 1: size and per-side sums of the common subset.
    const kernels::SsdMoments mom = kernels::ssd_moments_row<simd::Vec4d>(
        mean, mask, q.mean_dbm.data(), q.present.data(), stride);
    if (static_cast<int>(mom.n) < config_.min_common_aps) continue;
    const double mo = mom.sum_o / mom.n;
    const double mt = mom.sum_t / mom.n;
    // Pass 2: squared distance between the mean-centered signatures.
    const double sum2 = kernels::ssd_sq_dist_row<simd::Vec4d>(
        mean, mask, q.mean_dbm.data(), q.present.data(), mo, mt, stride);
    neighbors.push_back({&compiled_->point(p), std::sqrt(sum2)});
  }
  if (neighbors.empty()) return est;

  const std::size_t k = std::min<std::size_t>(
      static_cast<std::size_t>(config_.k), neighbors.size());
  std::partial_sort(neighbors.begin(),
                    neighbors.begin() + static_cast<std::ptrdiff_t>(k),
                    neighbors.end(),
                    [](const Neighbor& a, const Neighbor& b) {
                      return a.distance < b.distance;
                    });

  geom::Vec2 weighted;
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double w =
        config_.inverse_distance_weighting
            ? 1.0 / (neighbors[i].distance + config_.weighting_epsilon)
            : 1.0;
    weighted += neighbors[i].point->position * w;
    weight_sum += w;
  }
  est.valid = true;
  est.position = weighted / weight_sum;
  est.location_name = neighbors.front().point->location;
  est.score = -neighbors.front().distance;
  est.aps_used = static_cast<int>(obs.ap_count());
  return est;
}

}  // namespace loctk::core

#include "core/signal_index.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace loctk::core {

namespace {

// Max-heap ordering on distance2 so the worst current neighbor sits
// at front() and is cheap to evict.
bool heap_cmp(const IndexedNeighbor& a, const IndexedNeighbor& b) {
  return a.distance2 < b.distance2;
}

}  // namespace

SignalIndex::SignalIndex(const traindb::TrainingDatabase& db,
                         double missing_dbm)
    : db_(&db), missing_dbm_(missing_dbm),
      dims_(db.bssid_universe().size()) {
  points_.reserve(db.size());
  signatures_.reserve(db.size() * dims_);
  for (const traindb::TrainingPoint& tp : db.points()) {
    points_.push_back(&tp);
    const std::vector<double> sig =
        tp.signature(db.bssid_universe(), missing_dbm_);
    signatures_.insert(signatures_.end(), sig.begin(), sig.end());
  }
  if (!points_.empty() && dims_ > 0) {
    std::vector<std::size_t> items(points_.size());
    for (std::size_t i = 0; i < items.size(); ++i) items[i] = i;
    nodes_.reserve(points_.size());
    root_ = build(items, 0, items.size(), 0);
  }
}

int SignalIndex::build(std::vector<std::size_t>& items, std::size_t lo,
                       std::size_t hi, std::size_t depth) {
  if (lo >= hi) return -1;
  const std::size_t axis = depth % dims_;
  const std::size_t mid = lo + (hi - lo) / 2;
  std::nth_element(
      items.begin() + static_cast<std::ptrdiff_t>(lo),
      items.begin() + static_cast<std::ptrdiff_t>(mid),
      items.begin() + static_cast<std::ptrdiff_t>(hi),
      [&](std::size_t a, std::size_t b) {
        return signatures_[a * dims_ + axis] <
               signatures_[b * dims_ + axis];
      });

  Node node;
  node.point = items[mid];
  node.axis = axis;
  const auto self = static_cast<int>(nodes_.size());
  nodes_.push_back(node);
  // Children recurse after the push so `self` stays stable.
  const int left = build(items, lo, mid, depth + 1);
  const int right = build(items, mid + 1, hi, depth + 1);
  nodes_[static_cast<std::size_t>(self)].left = left;
  nodes_[static_cast<std::size_t>(self)].right = right;
  return self;
}

void SignalIndex::search(int node_idx, std::span<const double> query,
                         std::vector<IndexedNeighbor>& heap,
                         std::size_t k) const {
  if (node_idx < 0) return;
  const Node& node = nodes_[static_cast<std::size_t>(node_idx)];
  const double* sig = &signatures_[node.point * dims_];

  double d2 = 0.0;
  for (std::size_t d = 0; d < dims_; ++d) {
    const double diff = query[d] - sig[d];
    d2 += diff * diff;
  }
  if (heap.size() < k) {
    heap.push_back({points_[node.point], d2});
    std::push_heap(heap.begin(), heap.end(), heap_cmp);
  } else if (d2 < heap.front().distance2) {
    std::pop_heap(heap.begin(), heap.end(), heap_cmp);
    heap.back() = {points_[node.point], d2};
    std::push_heap(heap.begin(), heap.end(), heap_cmp);
  }

  const double delta = query[node.axis] - sig[node.axis];
  const int near = delta <= 0.0 ? node.left : node.right;
  const int far = delta <= 0.0 ? node.right : node.left;
  search(near, query, heap, k);
  // Prune the far side unless the splitting plane is closer than the
  // current worst neighbor (or the heap is not yet full).
  if (heap.size() < k || delta * delta < heap.front().distance2) {
    search(far, query, heap, k);
  }
}

std::vector<IndexedNeighbor> SignalIndex::nearest(
    std::span<const double> signature, int k) const {
  std::vector<IndexedNeighbor> heap;
  if (root_ < 0 || k <= 0 || signature.size() != dims_) return heap;
  const auto want =
      std::min(static_cast<std::size_t>(k), points_.size());
  heap.reserve(want + 1);
  search(root_, signature, heap, want);
  std::sort_heap(heap.begin(), heap.end(), heap_cmp);
  return heap;
}

std::vector<IndexedNeighbor> SignalIndex::nearest(const Observation& obs,
                                                  int k) const {
  const std::vector<double> sig =
      obs.signature(db_->bssid_universe(), missing_dbm_);
  return nearest(sig, k);
}

}  // namespace loctk::core

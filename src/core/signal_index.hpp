#pragma once

/// \file signal_index.hpp
/// A k-d tree over training-point signatures.
///
/// Brute-force NNSS is linear in the database; fine for the paper's
/// 12-point house, painful for a campus radio map with thousands of
/// survey points. This index organizes the mean-signal signatures
/// (one dimension per BSSID in the database universe, missing APs
/// filled with a weak-floor sentinel) into a k-d tree with
/// bounding-box pruning, returning exactly the same neighbors as the
/// linear scan — verified by property tests — in logarithmic expected
/// time for the moderate dimensionalities (4-16 APs) real sites have.

#include <span>
#include <vector>

#include "core/observation.hpp"
#include "traindb/database.hpp"

namespace loctk::core {

/// One query answer: a training point and its squared signal-space
/// distance from the query signature.
struct IndexedNeighbor {
  const traindb::TrainingPoint* point = nullptr;
  double distance2 = 0.0;
};

/// Immutable k-d tree over a database's signatures. The database must
/// outlive the index.
class SignalIndex {
 public:
  explicit SignalIndex(const traindb::TrainingDatabase& db,
                       double missing_dbm = -100.0);

  /// The `k` nearest training points to `signature` (length must be
  /// the universe size), sorted by ascending distance. k is clamped
  /// to the database size.
  std::vector<IndexedNeighbor> nearest(std::span<const double> signature,
                                       int k) const;

  /// Convenience: query with an observation's mean vector.
  std::vector<IndexedNeighbor> nearest(const Observation& obs,
                                       int k) const;

  std::size_t size() const { return points_.size(); }
  std::size_t dimensions() const { return dims_; }
  double missing_dbm() const { return missing_dbm_; }

 private:
  struct Node {
    std::size_t point = 0;     ///< index into points_/signatures_
    std::size_t axis = 0;
    int left = -1;
    int right = -1;
  };

  int build(std::vector<std::size_t>& items, std::size_t lo,
            std::size_t hi, std::size_t depth);
  void search(int node, std::span<const double> query,
              std::vector<IndexedNeighbor>& heap, std::size_t k) const;

  const traindb::TrainingDatabase* db_;  // non-owning
  double missing_dbm_;
  std::size_t dims_ = 0;
  std::vector<const traindb::TrainingPoint*> points_;
  /// Row-major signatures: signatures_[i * dims_ + d].
  std::vector<double> signatures_;
  std::vector<Node> nodes_;
  int root_ = -1;
};

}  // namespace loctk::core

#pragma once

/// \file knn.hpp
/// Deterministic signal-space nearest-neighbor locators (RADAR).
///
/// The classic baseline the paper's probabilistic approach descends
/// from: treat the mean-RSSI vector as a point in signal space and
/// return the training point whose signature is Euclidean-closest
/// (NNSS, Bahl & Padmanabhan 2000). The k-NN variant averages the k
/// best training positions, optionally weighted by inverse distance,
/// which can land *between* training points — something the paper's
/// §5.1 locator cannot do.

#include "core/candidate_pruner.hpp"
#include "core/compiled_db.hpp"
#include "core/locator.hpp"

namespace loctk::core {

struct KnnConfig {
  int k = 1;
  /// Weight neighbors by 1/(signal distance + epsilon) instead of
  /// uniformly.
  bool inverse_distance_weighting = true;
  double weighting_epsilon = 1e-3;
  /// Sentinel RSSI for APs missing on either side (dBm).
  double missing_dbm = -100.0;
  /// Coarse-to-fine pruning: when > 0, locate() ranks only the
  /// candidate rows the strongest-AP prefilter returns (distances
  /// computed with the exact kernel) and falls back to the full
  /// sweep when the prefilter is degenerate. 0 = exhaustive.
  int prune_top_k = 0;
  /// Strongest observed APs seeding the prefilter.
  int prune_strongest_aps = 4;
};

/// k-nearest-neighbor in signal space. k = 1 gives plain NNSS.
///
/// locate() runs over a dense `points x universe` signature matrix
/// with missing APs pre-filled, so the inner loop is a plain squared
/// distance between double vectors; `signal_distance` keeps the
/// string-keyed reference form.
class KnnLocator : public Locator {
 public:
  explicit KnnLocator(const traindb::TrainingDatabase& db,
                      KnnConfig config = {});

  /// Shares an existing compilation.
  explicit KnnLocator(std::shared_ptr<const CompiledDatabase> compiled,
                      KnnConfig config = {});

  LocationEstimate locate(const Observation& obs) const override;
  std::string name() const override;

  /// Euclidean distance in signal space between the observation and a
  /// training point, over the database's BSSID universe (reference
  /// implementation; locate() uses the compiled kernel).
  double signal_distance(const Observation& obs,
                         const traindb::TrainingPoint& point) const;

  const KnnConfig& config() const { return config_; }

 private:
  std::shared_ptr<const CompiledDatabase> compiled_;
  KnnConfig config_;
  /// Built when config_.prune_top_k > 0.
  std::shared_ptr<const CandidatePruner> pruner_;
  /// Row-major points x row_stride() mean signatures with
  /// `missing_dbm` filled at untrained slots; 64-byte aligned, and
  /// pad cells are 0.0 on both the matrix and the query side so the
  /// vectorized squared distance sees exact zero deltas there.
  simd::AlignedDoubles filled_;
};

}  // namespace loctk::core

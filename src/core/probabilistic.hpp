#pragma once

/// \file probabilistic.hpp
/// The paper's §5.1 probabilistic (maximum-likelihood) locator.
///
/// Training stored, per <training point, AP>, the mean and standard
/// deviation of the RSSI samples. At working time the observed mean
/// vector is scored against every training point with
///
///   value = Π_AP  exp(-(obs - mean)^2 / 2σ²) / sqrt(2πσ²)     (paper eq. 1)
///
/// and the arg-max training point is returned: "this approach does
/// not return the coordinate values of the observed location, but
/// returns the most approximate training location instead."
///
/// We evaluate the product in log space (same arg-max, no underflow)
/// and expose the full per-point scores for the Bayes-grid and
/// tracking layers. The bulk paths (`score_all`, `locate`,
/// `score_batch`) run a dense kernel over `CompiledDatabase` matrices;
/// the per-point `log_likelihood` keeps the string-keyed form as the
/// readable reference implementation (the equivalence is pinned by
/// tests/core_compiled_db_test.cpp).

#include <span>
#include <vector>

#include "core/candidate_pruner.hpp"
#include "core/compiled_db.hpp"
#include "core/locator.hpp"

namespace loctk::core {

/// Tuning knobs for the likelihood.
struct ProbabilisticConfig {
  /// Lower bound on σ (dB). A training pair whose samples never
  /// varied would otherwise produce a delta-function that vetoes
  /// everything.
  double sigma_floor_db = 1.0;
  /// Log-penalty applied per AP that is present on exactly one side
  /// (heard now but not trained here, or vice versa). Encodes "this
  /// AP's visibility disagrees" without zeroing the product.
  double missing_ap_log_penalty = -6.0;
  /// Points sharing fewer than this many APs with the observation are
  /// skipped entirely.
  int min_common_aps = 1;
  /// Use one sigma per AP, pooled across all training points, instead
  /// of each point's own sample sigma. The paper's formula uses the
  /// per-point sigma; with ~90 samples that estimate is noisy enough
  /// that its -log(sigma) term can flip near-ties toward whichever
  /// cell happened to survey calm (a known fingerprinting pathology).
  /// Pooling removes that term from the decision.
  bool use_pooled_sigma = false;
  /// Coarse-to-fine pruning: when > 0, locate() scores only the
  /// `prune_top_k` candidate rows a strongest-AP prefilter selects
  /// (each scored with the exact kernel), falling back to the full
  /// pass whenever the prefilter is degenerate or the pruned pass
  /// yields no valid estimate. 0 keeps the exhaustive sweep.
  /// score_all/score_batch always score everything — pruning is a
  /// serve-path (locate) optimization.
  int prune_top_k = 0;
  /// How many of the observation's loudest APs seed the prefilter.
  int prune_strongest_aps = 4;
};

/// One scored training point (for diagnostics and the Bayes layer).
struct ScoredPoint {
  const traindb::TrainingPoint* point = nullptr;
  double log_likelihood = 0.0;
  int common_aps = 0;
};

/// The §5.1 locator.
class ProbabilisticLocator : public Locator {
 public:
  /// `db` must outlive the locator. Compiles the database privately;
  /// prefer the shared-compilation overload when several locators sit
  /// on the same database.
  explicit ProbabilisticLocator(const traindb::TrainingDatabase& db,
                                ProbabilisticConfig config = {});

  /// Shares an existing compilation (the underlying database must
  /// outlive the locator).
  explicit ProbabilisticLocator(
      std::shared_ptr<const CompiledDatabase> compiled,
      ProbabilisticConfig config = {});

  LocationEstimate locate(const Observation& obs) const override;
  std::string name() const override { return "probabilistic-ml"; }

  /// Batched locate on the observation-major kernel: four observations
  /// occupy the vector lanes and ride one pass over the training rows,
  /// with each row's table values broadcast once and the entire
  /// epilogue (penalties, clamp, arg-max) kept in lanes — no
  /// horizontal reductions anywhere on the hot path. Results are
  /// bit-identical to locate() per element (the kernel reproduces the
  /// slot-major kernel's per-lane partial sums and hsum tree); pruned
  /// configurations route through the per-observation coarse-to-fine
  /// path instead.
  std::vector<LocationEstimate> locate_batch(
      std::span<const Observation> obs,
      concurrency::ThreadPool* pool = nullptr) const override;

  /// Log-likelihood of `obs` against every training point, in
  /// database order. Skipped points carry -infinity.
  std::vector<ScoredPoint> score_all(const Observation& obs) const;

  /// score_all for a batch of observations; with a pool the batch is
  /// chunked across workers. Results are index-aligned with `obs`.
  std::vector<std::vector<ScoredPoint>> score_batch(
      std::span<const Observation> obs,
      concurrency::ThreadPool* pool = nullptr) const;

  /// Log-likelihood of one observation at one training point —
  /// the string-keyed reference implementation (a sorted two-pointer
  /// merge over the observation and the point's per-AP list).
  /// `penalized_aps`, when given, receives the number of missing-AP
  /// penalty terms applied.
  double log_likelihood(const Observation& obs,
                        const traindb::TrainingPoint& point,
                        int* common_aps = nullptr,
                        int* penalized_aps = nullptr) const;

  const traindb::TrainingDatabase& database() const {
    return compiled_->database();
  }
  const CompiledDatabase& compiled() const { return *compiled_; }
  const ProbabilisticConfig& config() const { return config_; }

  /// Pooled sigma for `bssid` (defined whether or not pooling is
  /// enabled); falls back to the floor for unknown BSSIDs.
  double pooled_sigma_db(const std::string& bssid) const;

 private:
  void build_kernel_tables();
  /// Dense likelihood of a compiled observation at one row (SIMD
  /// kernel over the padded SoA rows).
  double score_point(std::size_t point, const CompiledObservation& q,
                     int* common_aps) const;
  /// score_point + the min_common_aps clamp, as stored in results.
  ScoredPoint scored_point(std::size_t point,
                           const CompiledObservation& q) const;
  /// Best estimate among `rows` (exact scores); invalid when every
  /// row is skipped.
  LocationEstimate best_of_rows(std::span<const std::uint32_t> rows,
                                const CompiledObservation& q) const;
  /// best_of_rows over the full database without materializing a row
  /// list (the exhaustive path locate() and the pruner fallback take).
  LocationEstimate best_of_all(const CompiledObservation& q) const;
  /// Four compiled observations through one pass over every training
  /// row via the observation-major kernel (lanes = observations);
  /// writes exactly what locate() would.
  void locate_quad(const CompiledObservation* qs,
                   LocationEstimate* out) const;

  std::shared_ptr<const CompiledDatabase> compiled_;
  ProbabilisticConfig config_;
  /// Built when config_.prune_top_k > 0 (shared so the locator stays
  /// copyable).
  std::shared_ptr<const CandidatePruner> pruner_;
  /// Aligned with database().bssid_universe().
  std::vector<double> pooled_sigma_;
  /// The per-cell Gaussian constants (see GaussianTables), shared with
  /// the pruner's ML coarse mode so copies of either stay valid.
  std::shared_ptr<const GaussianTables> tables_;
};

}  // namespace loctk::core

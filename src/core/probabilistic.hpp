#pragma once

/// \file probabilistic.hpp
/// The paper's §5.1 probabilistic (maximum-likelihood) locator.
///
/// Training stored, per <training point, AP>, the mean and standard
/// deviation of the RSSI samples. At working time the observed mean
/// vector is scored against every training point with
///
///   value = Π_AP  exp(-(obs - mean)^2 / 2σ²) / sqrt(2πσ²)     (paper eq. 1)
///
/// and the arg-max training point is returned: "this approach does
/// not return the coordinate values of the observed location, but
/// returns the most approximate training location instead."
///
/// We evaluate the product in log space (same arg-max, no underflow)
/// and expose the full per-point scores for the Bayes-grid and
/// tracking layers. The bulk paths (`score_all`, `locate`,
/// `score_batch`) run a dense kernel over `CompiledDatabase` matrices;
/// the per-point `log_likelihood` keeps the string-keyed form as the
/// readable reference implementation (the equivalence is pinned by
/// tests/core_compiled_db_test.cpp).

#include <span>
#include <vector>

#include "core/compiled_db.hpp"
#include "core/locator.hpp"

namespace loctk::core {

/// Tuning knobs for the likelihood.
struct ProbabilisticConfig {
  /// Lower bound on σ (dB). A training pair whose samples never
  /// varied would otherwise produce a delta-function that vetoes
  /// everything.
  double sigma_floor_db = 1.0;
  /// Log-penalty applied per AP that is present on exactly one side
  /// (heard now but not trained here, or vice versa). Encodes "this
  /// AP's visibility disagrees" without zeroing the product.
  double missing_ap_log_penalty = -6.0;
  /// Points sharing fewer than this many APs with the observation are
  /// skipped entirely.
  int min_common_aps = 1;
  /// Use one sigma per AP, pooled across all training points, instead
  /// of each point's own sample sigma. The paper's formula uses the
  /// per-point sigma; with ~90 samples that estimate is noisy enough
  /// that its -log(sigma) term can flip near-ties toward whichever
  /// cell happened to survey calm (a known fingerprinting pathology).
  /// Pooling removes that term from the decision.
  bool use_pooled_sigma = false;
};

/// One scored training point (for diagnostics and the Bayes layer).
struct ScoredPoint {
  const traindb::TrainingPoint* point = nullptr;
  double log_likelihood = 0.0;
  int common_aps = 0;
};

/// The §5.1 locator.
class ProbabilisticLocator : public Locator {
 public:
  /// `db` must outlive the locator. Compiles the database privately;
  /// prefer the shared-compilation overload when several locators sit
  /// on the same database.
  explicit ProbabilisticLocator(const traindb::TrainingDatabase& db,
                                ProbabilisticConfig config = {});

  /// Shares an existing compilation (the underlying database must
  /// outlive the locator).
  explicit ProbabilisticLocator(
      std::shared_ptr<const CompiledDatabase> compiled,
      ProbabilisticConfig config = {});

  LocationEstimate locate(const Observation& obs) const override;
  std::string name() const override { return "probabilistic-ml"; }

  /// Log-likelihood of `obs` against every training point, in
  /// database order. Skipped points carry -infinity.
  std::vector<ScoredPoint> score_all(const Observation& obs) const;

  /// score_all for a batch of observations; with a pool the batch is
  /// chunked across workers. Results are index-aligned with `obs`.
  std::vector<std::vector<ScoredPoint>> score_batch(
      std::span<const Observation> obs,
      concurrency::ThreadPool* pool = nullptr) const;

  /// Log-likelihood of one observation at one training point —
  /// the string-keyed reference implementation (a sorted two-pointer
  /// merge over the observation and the point's per-AP list).
  /// `penalized_aps`, when given, receives the number of missing-AP
  /// penalty terms applied.
  double log_likelihood(const Observation& obs,
                        const traindb::TrainingPoint& point,
                        int* common_aps = nullptr,
                        int* penalized_aps = nullptr) const;

  const traindb::TrainingDatabase& database() const {
    return compiled_->database();
  }
  const CompiledDatabase& compiled() const { return *compiled_; }
  const ProbabilisticConfig& config() const { return config_; }

  /// Pooled sigma for `bssid` (defined whether or not pooling is
  /// enabled); falls back to the floor for unknown BSSIDs.
  double pooled_sigma_db(const std::string& bssid) const;

 private:
  void build_kernel_tables();
  /// Dense likelihood of a compiled observation at one row.
  double score_point(std::size_t point, const CompiledObservation& q,
                     int* common_aps) const;

  std::shared_ptr<const CompiledDatabase> compiled_;
  ProbabilisticConfig config_;
  /// Aligned with database().bssid_universe().
  std::vector<double> pooled_sigma_;
  /// Row-major points x universe Gaussian constants, 0 at untrained
  /// slots:  log_pdf(x) = log_norm - (x - mean)² · inv_two_var.
  std::vector<double> log_norm_;
  std::vector<double> inv_two_var_;
};

}  // namespace loctk::core

#pragma once

/// \file hmm_tracker.hpp
/// Discrete Bayesian (HMM) tracking over the training points.
///
/// The most literal reading of the paper's future-work item 2: "use
/// the combination of the historical location value and the current
/// signal strength value to derive the current location ... use more
/// powerful statistic tool, such as Bayesian-filter." The hidden
/// state is *which training cell* the client occupies; the transition
/// model says the client walks a bounded distance between scans; the
/// emission model is the paper's own eq. (1) likelihood. The forward
/// recursion then fuses history with the current observation exactly
/// as proposed.

#include <vector>

#include "core/bayes.hpp"
#include "core/locator.hpp"
#include "core/probabilistic.hpp"

namespace loctk::core {

struct HmmTrackerConfig {
  ProbabilisticConfig likelihood;
  /// Expected per-step movement (ft); transitions are Gaussian in the
  /// distance between cell centers with this sigma.
  double step_sigma_ft = 4.0;
  /// Mass reserved for "teleport" transitions to any cell — keeps the
  /// filter recoverable after it latches onto a wrong mode.
  double uniform_mixing = 0.02;
  /// Report the posterior-mean position instead of the MAP cell
  /// center.
  bool use_posterior_mean = true;
};

/// Forward-algorithm filter over the training-point grid.
/// Stateful: call step() once per observation epoch.
class HmmTracker {
 public:
  /// Precomputes the |cells|^2 transition matrix. `db` must outlive
  /// the tracker.
  explicit HmmTracker(const traindb::TrainingDatabase& db,
                      HmmTrackerConfig config = {});

  /// One predict-update cycle; returns the filtered estimate. An
  /// empty observation performs predict-only (the belief diffuses).
  LocationEstimate step(const Observation& obs);

  /// Current belief over training points (aligned with points()).
  const std::vector<double>& belief() const { return belief_; }

  /// Belief entropy in nats (log |cells| when clueless).
  double entropy() const;

  /// Back to the uniform prior.
  void reset();

  const traindb::TrainingDatabase& database() const { return *db_; }

 private:
  void predict();

  const traindb::TrainingDatabase* db_;  // non-owning
  HmmTrackerConfig config_;
  ProbabilisticLocator emission_;
  /// Row-major transitions: transition_[from * n + to].
  std::vector<double> transition_;
  std::vector<double> belief_;
  std::vector<double> scratch_;
};

}  // namespace loctk::core

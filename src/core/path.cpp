#include "core/path.hpp"

#include <algorithm>
#include <cmath>

namespace loctk::core {

WaypointPath::WaypointPath(std::vector<geom::Vec2> waypoints)
    : waypoints_(std::move(waypoints)) {
  cum_.reserve(waypoints_.size());
  cum_.push_back(0.0);
  for (std::size_t i = 1; i < waypoints_.size(); ++i) {
    total_length_ += geom::distance(waypoints_[i - 1], waypoints_[i]);
    cum_.push_back(total_length_);
  }
}

std::pair<std::size_t, double> WaypointPath::locate_segment(
    double distance) const {
  // First waypoint whose cumulative length exceeds `distance`.
  const auto it = std::upper_bound(cum_.begin(), cum_.end(), distance);
  if (it == cum_.begin()) return {0, 0.0};
  const auto idx = static_cast<std::size_t>(
      std::distance(cum_.begin(), it)) - 1;
  if (idx + 1 >= waypoints_.size()) {
    return {waypoints_.size() - 1, 0.0};
  }
  return {idx, distance - cum_[idx]};
}

geom::Vec2 WaypointPath::position_at(double distance) const {
  if (waypoints_.empty()) return {};
  if (distance <= 0.0) return waypoints_.front();
  if (distance >= total_length_) return waypoints_.back();
  const auto [idx, offset] = locate_segment(distance);
  if (idx + 1 >= waypoints_.size()) return waypoints_.back();
  const double leg = geom::distance(waypoints_[idx], waypoints_[idx + 1]);
  if (leg <= 0.0) return waypoints_[idx];
  return geom::lerp(waypoints_[idx], waypoints_[idx + 1], offset / leg);
}

geom::Vec2 WaypointPath::heading_at(double distance) const {
  if (waypoints_.size() < 2) return {};
  const double d =
      std::clamp(distance, 0.0, std::max(0.0, total_length_ - 1e-9));
  const auto [idx, offset] = locate_segment(d);
  (void)offset;
  const std::size_t seg = std::min(idx, waypoints_.size() - 2);
  return (waypoints_[seg + 1] - waypoints_[seg]).normalized();
}

WaypointPath paper_house_tour() {
  return WaypointPath({
      {8, 8},   {42, 8},  {42, 18}, {25, 18}, {25, 32},
      {42, 32}, {8, 32},  {8, 8},
  });
}

WaypointPath random_waypoint_path(const geom::Rect& area, int n,
                                  stats::Rng& rng, double margin,
                                  double min_leg) {
  const geom::Rect inner = area.inflated(-margin);
  std::vector<geom::Vec2> waypoints;
  waypoints.reserve(static_cast<std::size_t>(std::max(0, n)));
  int guard = 0;
  while (static_cast<int>(waypoints.size()) < n && guard < n * 100) {
    ++guard;
    const geom::Vec2 p{rng.uniform(inner.min.x, inner.max.x),
                       rng.uniform(inner.min.y, inner.max.y)};
    if (!waypoints.empty() &&
        geom::distance(waypoints.back(), p) < min_leg) {
      continue;
    }
    waypoints.push_back(p);
  }
  return WaypointPath(std::move(waypoints));
}

}  // namespace loctk::core

#include "core/bayes.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace loctk::core {

BayesGridLocator::BayesGridLocator(const traindb::TrainingDatabase& db,
                                   BayesConfig config)
    : likelihood_(db, config.likelihood), config_(config) {}

Posterior BayesGridLocator::posterior(const Observation& obs) const {
  return posterior(obs, {});
}

Posterior BayesGridLocator::posterior(
    const Observation& obs, const std::vector<double>& prior) const {
  const std::vector<ScoredPoint> scores = likelihood_.score_all(obs);
  const std::size_t n = scores.size();

  Posterior post;
  post.probabilities.assign(n, 0.0);
  if (n == 0) return post;

  // Work in log space: log p_i = log prior_i + log like_i - logsumexp.
  constexpr double kPriorFloor = 1e-9;
  std::vector<double> log_weights(n);
  double max_lw = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    const double p =
        prior.empty() ? 1.0 : std::max(prior[i], kPriorFloor);
    log_weights[i] = scores[i].log_likelihood + std::log(p);
    max_lw = std::max(max_lw, log_weights[i]);
  }
  if (max_lw == -std::numeric_limits<double>::infinity()) {
    // Every point was vetoed: fall back to the (floored) prior alone.
    for (std::size_t i = 0; i < n; ++i) {
      log_weights[i] =
          std::log(prior.empty() ? 1.0 : std::max(prior[i], kPriorFloor));
      max_lw = std::max(max_lw, log_weights[i]);
    }
  }

  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    post.probabilities[i] = std::exp(log_weights[i] - max_lw);
    sum += post.probabilities[i];
  }
  geom::Vec2 mean;
  double entropy = 0.0;
  std::size_t map_index = 0;
  for (std::size_t i = 0; i < n; ++i) {
    post.probabilities[i] /= sum;
    const double p = post.probabilities[i];
    mean += scores[i].point->position * p;
    if (p > 0.0) entropy -= p * std::log(p);
    if (p > post.probabilities[map_index]) map_index = i;
  }
  post.mean_position = mean;
  post.entropy = entropy;
  post.map_index = map_index;
  return post;
}

LocationEstimate BayesGridLocator::locate(const Observation& obs) const {
  LocationEstimate est;
  const auto& db = database();
  if (obs.empty() || db.empty()) return est;

  const Posterior post = posterior(obs);
  if (post.probabilities.empty()) return est;

  const traindb::TrainingPoint& map_point = db.points()[post.map_index];
  est.valid = true;
  est.position =
      config_.use_posterior_mean ? post.mean_position : map_point.position;
  est.location_name = map_point.location;
  est.score = post.probabilities[post.map_index];
  est.aps_used = static_cast<int>(obs.ap_count());
  return est;
}

}  // namespace loctk::core

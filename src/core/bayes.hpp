#pragma once

/// \file bayes.hpp
/// Bayesian posterior over training points.
///
/// The paper's future-work §6 item 2 proposes "more powerful statistic
/// tool, such as Bayesian-filter". This locator normalizes the §5.1
/// per-point likelihoods into a posterior, supports a non-uniform
/// prior (e.g. the previous time step's belief — the tracking layer
/// feeds it back), and reports both the MAP cell and the posterior-
/// weighted mean position (which, unlike the MAP point, can fall
/// between training points).

#include <vector>

#include "core/locator.hpp"
#include "core/probabilistic.hpp"

namespace loctk::core {

struct BayesConfig {
  ProbabilisticConfig likelihood;
  /// Report the posterior-mean position instead of the MAP training
  /// point's position.
  bool use_posterior_mean = true;
};

/// Posterior over the training points.
struct Posterior {
  /// Probabilities aligned with TrainingDatabase::points().
  std::vector<double> probabilities;
  /// MAP index (max probability, first on ties).
  std::size_t map_index = 0;
  /// Posterior-weighted mean position.
  geom::Vec2 mean_position;
  /// Entropy (nats) — a confidence diagnostic: log(N) when clueless,
  /// 0 when certain.
  double entropy = 0.0;
};

class BayesGridLocator : public Locator {
 public:
  explicit BayesGridLocator(const traindb::TrainingDatabase& db,
                            BayesConfig config = {});

  LocationEstimate locate(const Observation& obs) const override;
  std::string name() const override { return "bayes-grid"; }

  /// Full posterior with a uniform prior.
  Posterior posterior(const Observation& obs) const;

  /// Full posterior with an explicit prior (aligned with points(),
  /// need not be normalized; zero-mass priors are floored so a bad
  /// prior cannot permanently veto a cell).
  Posterior posterior(const Observation& obs,
                      const std::vector<double>& prior) const;

  const traindb::TrainingDatabase& database() const {
    return likelihood_.database();
  }

 private:
  ProbabilisticLocator likelihood_;
  BayesConfig config_;
};

}  // namespace loctk::core

#pragma once

/// \file signal_field.hpp
/// Continuous interpolation of the trained signal map.
///
/// The training database knows mean/σ only at the surveyed points.
/// Several extensions (the fine-grid locator, the particle filter)
/// need a likelihood at *arbitrary* positions; this class provides it
/// by inverse-distance-weighted (IDW) interpolation of the per-AP
/// training statistics. IDW is the standard choice for sparse radio
/// maps: exact at the training points, smooth in between, and with no
/// parameters to fit.

#include <optional>
#include <vector>

#include "core/observation.hpp"
#include "geom/vec2.hpp"
#include "traindb/database.hpp"

namespace loctk::core {

struct SignalFieldConfig {
  /// IDW power (2 = inverse-square weights, the common default).
  double idw_power = 2.0;
  /// Training points farther than this contribute nothing (feet).
  double max_influence_ft = 60.0;
  /// σ regularization floor (dB).
  double sigma_floor_db = 1.5;
  /// Log-penalty per AP visible on one side only.
  double missing_ap_log_penalty = -6.0;
};

/// Interpolated per-AP statistics at a query position.
struct FieldSample {
  double mean_dbm = 0.0;
  double sigma_db = 0.0;
  /// Interpolated visibility in [0,1]; below ~0.5 the AP is usually
  /// not heard here.
  double visibility = 0.0;
};

class SignalField {
 public:
  explicit SignalField(const traindb::TrainingDatabase& db,
                       SignalFieldConfig config = {});

  /// Interpolated statistics of AP `bssid` at `pos`; nullopt when the
  /// AP is unknown or no training point is within influence range.
  std::optional<FieldSample> sample(const std::string& bssid,
                                    geom::Vec2 pos) const;

  /// Log-likelihood of an observation's mean vector at `pos`,
  /// Gaussian per AP, with missing-AP penalties — a continuous
  /// analogue of ProbabilisticLocator::log_likelihood.
  double log_likelihood(const Observation& obs, geom::Vec2 pos) const;

  const traindb::TrainingDatabase& database() const { return *db_; }
  const SignalFieldConfig& config() const { return config_; }

 private:
  const traindb::TrainingDatabase* db_;  // non-owning
  SignalFieldConfig config_;
};

}  // namespace loctk::core

#pragma once

/// \file evaluation.hpp
/// The evaluation harness behind every number in EXPERIMENTS.md.
///
/// Reproduces the paper's two metrics over a set of test observations:
///
///  * **valid-estimation rate** (§5.1): the fraction of observations
///    for which a fingerprint locator returned the training point
///    nearest to where the client actually stood ("60% observations
///    end up with a valid estimation");
///  * **average deviation** (§5.2): mean Euclidean distance between
///    estimate and truth in feet, plus median/p90/max and the full
///    error list for CDFs.
///
/// Also provides the paper's fixed experimental setup: the 13 test
/// locations "scattered in the house" and the 10-ft training grid.

#include <string>
#include <vector>

#include "core/locator.hpp"
#include "geom/rect.hpp"
#include "radio/scanner.hpp"
#include "wiscan/location_map.hpp"

namespace loctk::core {

/// One evaluated observation.
struct TestOutcome {
  geom::Vec2 truth;
  LocationEstimate estimate;
  double error_ft = 0.0;
  /// Fingerprint metric: locator returned the training point nearest
  /// the truth (meaningless for coordinate locators; false there).
  bool cell_correct = false;
};

/// Aggregate over a test set.
struct EvaluationResult {
  std::string locator_name;
  std::vector<TestOutcome> outcomes;

  std::size_t count() const { return outcomes.size(); }
  std::size_t valid_count() const;
  /// §5.1 metric: cell-correct / total.
  double valid_estimation_rate() const;
  /// §5.2 metric over valid estimates (ft).
  double mean_error_ft() const;
  double median_error_ft() const;
  double p90_error_ft() const;
  double max_error_ft() const;
  /// Sorted error list (valid estimates only) for CDF plots.
  std::vector<double> sorted_errors() const;
};

/// Evaluates one locator against observations captured at known truth
/// positions. `db` supplies the nearest-training-point oracle for the
/// cell-correct metric.
EvaluationResult evaluate(const Locator& locator,
                          const traindb::TrainingDatabase& db,
                          const std::vector<geom::Vec2>& truths,
                          const std::vector<Observation>& observations);

/// Collects a working-phase observation at each truth point using
/// `scanner` (`scans_per_point` passes each, fresh session per point).
std::vector<Observation> collect_observations(
    radio::Scanner& scanner, const std::vector<geom::Vec2>& truths,
    int scans_per_point);

/// The paper's training layout: grid points at multiples of
/// `spacing_ft` strictly inside the footprint, named "px-y". With the
/// 50x40 house and 10 ft this yields the 4x3 interior + boundary
/// points the paper trained on.
wiscan::LocationMap make_training_grid(const geom::Rect& footprint,
                                       double spacing_ft = 10.0);

/// The paper's 13 test locations "scattered in the house", chosen
/// deterministically off-grid (no test point coincides with a
/// training point).
std::vector<geom::Vec2> make_scattered_test_points(
    const geom::Rect& footprint, int count = 13,
    std::uint64_t seed = 0x13B7);

}  // namespace loctk::core

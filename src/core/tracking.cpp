#include "core/tracking.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace loctk::core {

/// --- Kalman ---------------------------------------------------------

KalmanTracker::KalmanTracker(KalmanConfig config) : config_(config) {}

void KalmanTracker::reset() {
  ax_ = Axis{};
  ay_ = Axis{};
  initialized_ = false;
  last_innovation_ft_ = 0.0;
  last_time_.reset();
}

geom::Vec2 KalmanTracker::position() const { return {ax_.x, ay_.x}; }
geom::Vec2 KalmanTracker::velocity() const { return {ax_.v, ay_.v}; }

KalmanTracker::AxisCovariance KalmanTracker::covariance_x() const {
  return {ax_.p00, ax_.p01, ax_.p11};
}
KalmanTracker::AxisCovariance KalmanTracker::covariance_y() const {
  return {ay_.p00, ay_.p01, ay_.p11};
}

double KalmanTracker::sanitize_dt(double dt_s) const {
  return (std::isfinite(dt_s) && dt_s > 0.0) ? dt_s : config_.dt_s;
}

double KalmanTracker::dt_from_timestamp(double t_s) {
  if (!std::isfinite(t_s)) return config_.dt_s;
  if (!last_time_) {
    last_time_ = t_s;
    return config_.dt_s;
  }
  const double dt = t_s - *last_time_;
  // A stalled or rewound clock gives the fallback step but still
  // re-anchors, so one bad timestamp cannot poison every later dt.
  last_time_ = t_s;
  return sanitize_dt(dt);
}

void KalmanTracker::predict_axis(Axis& a, double dt) const {
  const double q = config_.accel_sigma * config_.accel_sigma;
  // x' = x + v dt
  a.x += a.v * dt;
  // P' = F P F^T + Q, with F = [[1, dt], [0, 1]] and the standard
  // white-acceleration Q.
  const double p00 = a.p00 + dt * (a.p01 + a.p01) + dt * dt * a.p11 +
                     q * dt * dt * dt * dt / 4.0;
  const double p01 = a.p01 + dt * a.p11 + q * dt * dt * dt / 2.0;
  const double p11 = a.p11 + q * dt * dt;
  a.p00 = p00;
  a.p01 = p01;
  a.p11 = p11;
}

void KalmanTracker::update_axis(Axis& a, double z) const {
  const double r =
      config_.measurement_sigma_ft * config_.measurement_sigma_ft;
  const double s = a.p00 + r;          // innovation variance
  const double k0 = a.p00 / s;         // gain (position)
  const double k1 = a.p01 / s;         // gain (velocity)
  const double innov = z - a.x;
  a.x += k0 * innov;
  a.v += k1 * innov;
  const double p00 = (1.0 - k0) * a.p00;
  const double p01 = (1.0 - k0) * a.p01;
  const double p11 = a.p11 - k1 * a.p01;
  a.p00 = p00;
  a.p01 = p01;
  a.p11 = p11;
}

geom::Vec2 KalmanTracker::predict() { return predict(config_.dt_s); }

geom::Vec2 KalmanTracker::predict(double dt_s) {
  if (!initialized_) return {};
  const double dt = sanitize_dt(dt_s);
  predict_axis(ax_, dt);
  predict_axis(ay_, dt);
  return position();
}

geom::Vec2 KalmanTracker::predict_at(double t_s) {
  return predict(dt_from_timestamp(t_s));
}

geom::Vec2 KalmanTracker::update(geom::Vec2 measured) {
  return update(measured, config_.dt_s);
}

geom::Vec2 KalmanTracker::update(geom::Vec2 measured, double dt_s) {
  if (!initialized_) {
    ax_.x = measured.x;
    ay_.x = measured.y;
    const double r =
        config_.measurement_sigma_ft * config_.measurement_sigma_ft;
    ax_.p00 = ay_.p00 = r;
    ax_.p11 = ay_.p11 = 4.0;  // generous initial velocity uncertainty
    initialized_ = true;
    return measured;
  }
  const double dt = sanitize_dt(dt_s);
  predict_axis(ax_, dt);
  predict_axis(ay_, dt);
  last_innovation_ft_ = geom::distance(position(), measured);
  update_axis(ax_, measured.x);
  update_axis(ay_, measured.y);
  return position();
}

geom::Vec2 KalmanTracker::update_at(geom::Vec2 measured, double t_s) {
  return update(measured, dt_from_timestamp(t_s));
}

LocationEstimate TrackedLocator::locate(const Observation& obs) const {
  LocationEstimate est = base_->locate(obs);
  if (est.valid) {
    est.position = tracker_.update(est.position);
  } else if (tracker_.initialized()) {
    est.valid = true;
    est.position = tracker_.predict();
    est.location_name.clear();
    est.score = 0.0;
  }
  return est;
}

/// --- Particle filter --------------------------------------------------

ParticleFilterTracker::ParticleFilterTracker(
    const traindb::TrainingDatabase& db, geom::Rect bounds,
    ParticleFilterConfig config)
    : field_(db, config.field), bounds_(bounds), config_(config),
      rng_(config.seed) {
  reset();
}

void ParticleFilterTracker::reset() {
  const auto n = static_cast<std::size_t>(
      std::max(1, config_.particle_count));
  particles_.resize(n);
  weights_.assign(n, 1.0 / static_cast<double>(n));
  for (geom::Vec2& p : particles_) {
    p = {rng_.uniform(bounds_.min.x, bounds_.max.x),
         rng_.uniform(bounds_.min.y, bounds_.max.y)};
  }
}

double ParticleFilterTracker::effective_sample_size() const {
  double sum2 = 0.0;
  for (const double w : weights_) sum2 += w * w;
  return sum2 > 0.0 ? 1.0 / sum2 : 0.0;
}

geom::Vec2 ParticleFilterTracker::estimate() const {
  geom::Vec2 mean;
  for (std::size_t i = 0; i < particles_.size(); ++i) {
    mean += particles_[i] * weights_[i];
  }
  return mean;
}

void ParticleFilterTracker::resample() {
  // Systematic (low-variance) resampling.
  const std::size_t n = particles_.size();
  std::vector<geom::Vec2> next;
  next.reserve(n);
  const double step = 1.0 / static_cast<double>(n);
  double u = rng_.uniform(0.0, step);
  double cumulative = weights_[0];
  std::size_t i = 0;
  for (std::size_t m = 0; m < n; ++m) {
    while (u > cumulative && i + 1 < n) {
      ++i;
      cumulative += weights_[i];
    }
    next.push_back(particles_[i]);
    u += step;
  }
  particles_ = std::move(next);
  weights_.assign(n, 1.0 / static_cast<double>(n));
}

geom::Vec2 ParticleFilterTracker::step(const Observation& obs) {
  // Predict: random-walk motion, clamped to the site.
  for (geom::Vec2& p : particles_) {
    p.x += rng_.normal(0.0, config_.motion_sigma_ft);
    p.y += rng_.normal(0.0, config_.motion_sigma_ft);
    p = bounds_.clamp(p);
  }

  // Update: weight by the interpolated observation likelihood.
  if (!obs.empty()) {
    double max_ll = -std::numeric_limits<double>::infinity();
    std::vector<double> lls(particles_.size());
    for (std::size_t i = 0; i < particles_.size(); ++i) {
      lls[i] = field_.log_likelihood(obs, particles_[i]);
      max_ll = std::max(max_ll, lls[i]);
    }
    if (max_ll > -std::numeric_limits<double>::infinity()) {
      double sum = 0.0;
      for (std::size_t i = 0; i < particles_.size(); ++i) {
        weights_[i] *= std::exp(lls[i] - max_ll);
        sum += weights_[i];
      }
      if (sum > 0.0) {
        for (double& w : weights_) w /= sum;
      } else {
        weights_.assign(weights_.size(),
                        1.0 / static_cast<double>(weights_.size()));
      }
    }
  }

  if (effective_sample_size() <
      config_.resample_threshold *
          static_cast<double>(particles_.size())) {
    resample();
  }
  return estimate();
}

}  // namespace loctk::core

#include "core/geometric.hpp"

#include <algorithm>
#include <cmath>

#include "geom/polygon.hpp"

namespace loctk::core {

double FittedApModel::predict(double distance_ft) const {
  return std::visit([&](const auto& m) { return m.predict(distance_ft); },
                    model);
}

double FittedApModel::invert(double ss_dbm, double d_min,
                             double d_max) const {
  return std::visit(
      [&](const auto& m) { return m.invert(ss_dbm, d_min, d_max); }, model);
}

double FittedApModel::r_squared() const {
  return std::visit([](const auto& m) { return m.r_squared; }, model);
}

namespace {

std::vector<FittedApModel> fit_models(const traindb::TrainingDatabase& db,
                                      const radio::Environment& env,
                                      const GeometricConfig& config) {
  std::vector<FittedApModel> models;
  for (const radio::AccessPoint& ap : env.access_points()) {
    std::vector<double> distances;
    std::vector<double> signals;
    for (const traindb::TrainingPoint& tp : db.points()) {
      const traindb::ApStatistics* s = tp.find(ap.bssid);
      if (!s) continue;
      distances.push_back(geom::distance(ap.position, tp.position));
      signals.push_back(s->mean_dbm);
    }
    if (distances.size() < 3) continue;

    FittedApModel fm;
    fm.bssid = ap.bssid;
    fm.position = ap.position;
    bool ok = false;
    switch (config.model) {
      case SignalModel::kInverseSquare: {
        const auto m = stats::fit_inverse_square(distances, signals);
        if (m) {
          fm.model = *m;
          ok = true;
        }
        break;
      }
      case SignalModel::kLogDistance: {
        const auto m = stats::fit_log_distance(distances, signals);
        if (m) {
          fm.model = *m;
          ok = true;
        }
        break;
      }
      case SignalModel::kInversePower: {
        const auto m = stats::fit_inverse_power(distances, signals);
        if (m) {
          fm.model = *m;
          ok = true;
        }
        break;
      }
    }
    if (ok) models.push_back(std::move(fm));
  }
  return models;
}

}  // namespace

GeometricLocator::GeometricLocator(const traindb::TrainingDatabase& db,
                                   const radio::Environment& env,
                                   GeometricConfig config)
    : config_(config), models_(fit_models(db, env, config)) {
  if (models_.size() < 3) {
    throw traindb::DatabaseError(
        "GeometricLocator: fewer than 3 APs have enough training "
        "coverage to fit a ranging model");
  }
}

std::vector<geom::Circle> GeometricLocator::circles_for(
    const Observation& obs) const {
  std::vector<geom::Circle> circles;
  circles.reserve(models_.size());
  for (const FittedApModel& fm : models_) {
    const auto observed = obs.mean_of(fm.bssid);
    if (!observed || *observed < config_.min_usable_dbm) continue;
    const double d = fm.invert(*observed, config_.min_distance_ft,
                               config_.max_distance_ft);
    circles.push_back({fm.position, d});
  }
  return circles;
}

LocationEstimate GeometricLocator::locate(const Observation& obs) const {
  LocationEstimate est;
  const std::vector<geom::Circle> circles = circles_for(obs);
  if (circles.size() < 3) return est;

  // Pairwise intersection points.
  std::vector<geom::Vec2> pair_points;
  if (config_.pairs == PairStrategy::kAdjacentRing) {
    for (std::size_t i = 0; i < circles.size(); ++i) {
      const std::size_t j = (i + 1) % circles.size();
      pair_points.push_back(geom::circle_pair_point(circles[i], circles[j]));
    }
  } else {
    for (std::size_t i = 0; i < circles.size(); ++i) {
      for (std::size_t j = i + 1; j < circles.size(); ++j) {
        pair_points.push_back(
            geom::circle_pair_point(circles[i], circles[j]));
      }
    }
  }
  if (pair_points.empty()) return est;

  geom::Vec2 p;
  switch (config_.estimator) {
    case PointEstimator::kComponentMedian:
      p = geom::component_median(pair_points);
      break;
    case PointEstimator::kGeometricMedian:
      p = geom::geometric_median(pair_points);
      break;
    case PointEstimator::kMean:
      p = geom::mean_point(pair_points);
      break;
  }
  if (!geom::is_finite(p)) return est;

  // Confidence: negative RMS radial residual of the estimate.
  std::vector<geom::RangeMeasurement> ranges;
  ranges.reserve(circles.size());
  for (const geom::Circle& c : circles) {
    ranges.push_back({c.center, c.radius});
  }
  est.valid = true;
  est.position = p;
  est.score = -geom::range_rms_residual(ranges, p);
  est.aps_used = static_cast<int>(circles.size());
  return est;
}

LaterationLocator::LaterationLocator(const traindb::TrainingDatabase& db,
                                     const radio::Environment& env,
                                     GeometricConfig config)
    : ranging_(db, env, config),
      bounds_(env.footprint().inflated(10.0)) {}

LocationEstimate LaterationLocator::locate(const Observation& obs) const {
  LocationEstimate est;
  const std::vector<geom::Circle> circles = ranging_.circles_for(obs);
  if (circles.size() < 3) return est;

  std::vector<geom::RangeMeasurement> ranges;
  ranges.reserve(circles.size());
  for (const geom::Circle& c : circles) {
    ranges.push_back({c.center, c.radius});
  }
  const auto linear = geom::lateration_least_squares(ranges);
  if (!linear) return est;
  const geom::Vec2 refined = geom::lateration_gauss_newton(ranges, *linear);
  if (!geom::is_finite(refined)) return est;

  est.valid = true;
  // Biased ranges can push the unconstrained solution far off the
  // site; clamp to the mapped area (plus margin) like a deployed
  // system would.
  est.position = bounds_.clamp(refined);
  est.score = -geom::range_rms_residual(ranges, refined);
  est.aps_used = static_cast<int>(circles.size());
  return est;
}

}  // namespace loctk::core

#include "core/location_service.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "base/metrics.hpp"

namespace loctk::core {

namespace {

metrics::Counter& scans_counter() {
  static metrics::Counter& c = metrics::counter("service.scans");
  return c;
}
metrics::Counter& rejected_samples_counter() {
  static metrics::Counter& c =
      metrics::counter("service.rejected_samples");
  return c;
}
metrics::Counter& degraded_fixes_counter() {
  static metrics::Counter& c = metrics::counter("service.degraded_fixes");
  return c;
}
metrics::Gauge& innovation_gauge() {
  static metrics::Gauge& g =
      metrics::gauge("service.kalman.innovation_ft");
  return g;
}

}  // namespace

LocationService::LocationService(LocationServiceConfig config)
    : locator_(nullptr), config_(config), kalman_(config.kalman) {
  config_.window_scans = std::max<std::size_t>(1, config_.window_scans);
  config_.min_scans =
      std::clamp<std::size_t>(config_.min_scans, 1, config_.window_scans);
  config_.place_debounce = std::max(1, config_.place_debounce);
}

LocationService::LocationService(const Locator& locator,
                                 LocationServiceConfig config)
    : LocationService(config) {
  locator_ = &locator;
}

LocationService::LocationService(std::shared_ptr<const Locator> locator,
                                 LocationServiceConfig config)
    : LocationService(*locator, config) {
  owned_locator_ = std::move(locator);
}

const Locator& LocationService::bound_locator() const {
  if (!locator_) {
    throw std::logic_error(
        "LocationService: unbound service needs the "
        "on_scan(locator, scan) form");
  }
  return *locator_;
}

std::vector<LocationEstimate> LocationService::locate_batch(
    std::span<const Observation> observations,
    concurrency::ThreadPool* pool) const {
  return bound_locator().locate_batch(observations, pool);
}

std::vector<ServiceFix> LocationService::replay(
    std::span<const radio::ScanRecord> scans) {
  std::vector<ServiceFix> fixes;
  fixes.reserve(scans.size());
  for (const radio::ScanRecord& scan : scans) {
    fixes.push_back(on_scan(scan));
  }
  return fixes;
}

Result<LocationEstimate> LocationService::try_locate(
    const Observation& obs) const {
  return bound_locator().try_locate(obs);
}

void LocationService::reset() {
  window_.clear();
  kalman_.reset();
  fix_ = {};
  candidate_place_.clear();
  candidate_streak_ = 0;
  announced_place_.clear();
}

ServiceFix LocationService::on_scan(const radio::ScanRecord& scan) {
  return on_scan(bound_locator(), scan);
}

ServiceFix LocationService::on_scan(const Locator& locator,
                                    const radio::ScanRecord& scan) {
  // A NIC driver glitch or hostile replay can hand us inf/nan dBm;
  // once inside the window it would poison every mean the locator
  // sees until the window drains. Drop such samples at the door.
  scans_counter().increment();
  ++scans_seen_;
  radio::ScanRecord clean = scan;
  std::erase_if(clean.samples, [this](const radio::ScanSample& s) {
    const bool bad = !std::isfinite(s.rssi_dbm);
    if (bad) {
      ++rejected_samples_;
      rejected_samples_counter().increment();
    }
    return bad;
  });

  window_.push_back(std::move(clean));
  if (window_.size() > config_.window_scans) {
    window_.erase(window_.begin());
  }
  fix_.window_fill = window_.size();
  fix_.degraded_reason.clear();

  if (window_.size() < config_.min_scans) {
    fix_.valid = false;
    return fix_;
  }

  const Observation obs = Observation::from_scans(window_);
  const Result<LocationEstimate> result = locator.try_locate(obs);
  const LocationEstimate est =
      result.ok() ? result.value() : LocationEstimate{};

  if (est.valid) {
    fix_.valid = true;
    if (config_.kalman_smoothing) {
      // Step the filter by the real inter-scan interval; a missing or
      // rewound timestamp falls back to the configured dt inside the
      // tracker.
      fix_.position = kalman_.update_at(est.position, scan.timestamp_s);
      innovation_gauge().set(kalman_.last_innovation_ft());
    } else {
      fix_.position = est.position;
    }
  } else if (config_.kalman_smoothing && kalman_.initialized()) {
    // Coast through a bad window, reporting why the fix is degraded.
    fix_.valid = true;
    fix_.position = kalman_.predict_at(scan.timestamp_s);
    fix_.degraded_reason = result.error().to_string();
    degraded_fixes_counter().increment();
  } else {
    fix_.valid = false;
    fix_.degraded_reason = result.error().to_string();
    return fix_;
  }

  // Debounced place resolution.
  const std::string& place = est.location_name;
  if (!place.empty()) {
    if (place == candidate_place_) {
      ++candidate_streak_;
    } else {
      candidate_place_ = place;
      candidate_streak_ = 1;
    }
    if (candidate_streak_ >= config_.place_debounce &&
        candidate_place_ != announced_place_) {
      const std::string from = announced_place_;
      announced_place_ = candidate_place_;
      fix_.place = announced_place_;
      for (const PlaceChangeCallback& cb : callbacks_) {
        cb(from, announced_place_);
      }
    }
  }
  fix_.place = announced_place_;
  return fix_;
}

}  // namespace loctk::core

#include "core/probabilistic.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/metrics.hpp"
#include "concurrency/parallel_for.hpp"
#include "core/score_kernels.hpp"
#include "stats/gaussian.hpp"

namespace loctk::core {

namespace {

metrics::Counter& score_batch_calls() {
  static metrics::Counter& c = metrics::counter("score.batch.calls");
  return c;
}
metrics::Counter& score_batch_observations() {
  static metrics::Counter& c =
      metrics::counter("score.batch.observations");
  return c;
}
metrics::HistogramMetric& score_latency() {
  static metrics::HistogramMetric& h =
      metrics::histogram("score.latency.seconds");
  return h;
}
metrics::Counter& prune_queries() {
  static metrics::Counter& c = metrics::counter("score.prune.queries");
  return c;
}
metrics::Counter& prune_candidates_scored() {
  static metrics::Counter& c =
      metrics::counter("score.prune.candidates_scored");
  return c;
}
metrics::Counter& prune_fallback_full() {
  static metrics::Counter& c =
      metrics::counter("score.prune.fallback_full");
  return c;
}
metrics::Gauge& prune_database_points() {
  static metrics::Gauge& g = metrics::gauge("score.prune.database_points");
  return g;
}

// The same production counters Locator::locate_batch feeds, fetched
// by name so the quad-kernel override below stays indistinguishable
// from the base path in every metrics invariant.
metrics::Counter& locate_calls() {
  static metrics::Counter& c = metrics::counter("locate.calls");
  return c;
}
metrics::Counter& locate_degenerate() {
  static metrics::Counter& c = metrics::counter("locate.degenerate");
  return c;
}
metrics::HistogramMetric& locate_latency() {
  static metrics::HistogramMetric& h =
      metrics::histogram("locate.latency.seconds");
  return h;
}
metrics::Counter& locate_batch_calls() {
  static metrics::Counter& c = metrics::counter("locate.batch.calls");
  return c;
}
metrics::Counter& locate_batch_observations() {
  static metrics::Counter& c =
      metrics::counter("locate.batch.observations");
  return c;
}

/// Cache-blocking geometry for score_batch: observations are chunked
/// into groups and the training rows into tiles, so one tile of
/// mean/mask/log_norm/inv_two_var panels is scored against the whole
/// group while it is L1/L2-resident.
constexpr std::size_t kBatchGroup = 8;
constexpr std::size_t kPointTile = 64;

}  // namespace

ProbabilisticLocator::ProbabilisticLocator(
    const traindb::TrainingDatabase& db, ProbabilisticConfig config)
    : ProbabilisticLocator(CompiledDatabase::compile(db), config) {}

ProbabilisticLocator::ProbabilisticLocator(
    std::shared_ptr<const CompiledDatabase> compiled,
    ProbabilisticConfig config)
    : compiled_(std::move(compiled)), config_(config) {
  build_kernel_tables();
  if (config_.prune_top_k > 0) {
    // ML coarse mode: the pruner ranks candidates with this locator's
    // own restricted score, so the exact arg-max is never pruned out
    // (candidate_pruner.hpp, "ML coarse mode").
    pruner_ = std::make_shared<const CandidatePruner>(
        compiled_,
        PrunerConfig{.strongest_aps = config_.prune_strongest_aps,
                     .top_k = config_.prune_top_k,
                     .ml_tables = tables_,
                     .ml_missing_penalty = config_.missing_ap_log_penalty,
                     .ml_min_common_aps = config_.min_common_aps});
    prune_database_points().set(
        static_cast<double>(compiled_->point_count()));
  }
}

void ProbabilisticLocator::build_kernel_tables() {
  const std::size_t points = compiled_->point_count();
  const std::size_t universe = compiled_->universe_size();

  // Pooled per-AP sigma: sample-count-weighted RMS of the per-point
  // sigmas (i.e. pooled variance), in one pass over the dense rows.
  pooled_sigma_.assign(universe, config_.sigma_floor_db);
  std::vector<double> var_sum(universe, 0.0);
  std::vector<double> weight(universe, 0.0);
  for (std::size_t p = 0; p < points; ++p) {
    const double* sd = compiled_->stddev_row(p);
    const double* w = compiled_->weight_row(p);
    for (std::size_t u = 0; u < universe; ++u) {
      var_sum[u] += w[u] * sd[u] * sd[u];
      weight[u] += w[u];
    }
  }
  for (std::size_t u = 0; u < universe; ++u) {
    if (weight[u] > 0.0) {
      pooled_sigma_[u] = std::max(std::sqrt(var_sum[u] / weight[u]),
                                  config_.sigma_floor_db);
    }
  }

  // Per-cell Gaussian constants. Untrained slots (and the stride pad)
  // get exact zeros so the branchless kernel's masked terms stay
  // finite; the tables share the compiled matrices' aligned padded
  // layout so score_point can run unmasked vector loads.
  const std::size_t stride = compiled_->row_stride();
  auto tables = std::make_shared<GaussianTables>();
  tables->log_norm.assign(points * stride, 0.0);
  tables->inv_two_var.assign(points * stride, 0.0);
  for (std::size_t p = 0; p < points; ++p) {
    const double* sd = compiled_->stddev_row(p);
    const double* mask = compiled_->mask_row(p);
    const std::size_t base = p * stride;
    for (std::size_t u = 0; u < universe; ++u) {
      if (mask[u] == 0.0) continue;
      const double sigma =
          config_.use_pooled_sigma
              ? pooled_sigma_[u]
              : std::max(sd[u], config_.sigma_floor_db);
      tables->log_norm[base + u] =
          -0.5 * std::log(stats::kTwoPi * sigma * sigma);
      tables->inv_two_var[base + u] = 0.5 / (sigma * sigma);
    }
  }
  tables_ = std::move(tables);
}

double ProbabilisticLocator::pooled_sigma_db(const std::string& bssid) const {
  const auto slot = compiled_->slot_of(bssid);
  if (!slot) return config_.sigma_floor_db;
  return pooled_sigma_[*slot];
}

double ProbabilisticLocator::log_likelihood(
    const Observation& obs, const traindb::TrainingPoint& point,
    int* common_aps, int* penalized_aps) const {
  double total = 0.0;
  int common = 0;
  int penalized = 0;

  // Both sides are sorted by BSSID: a single merge visits every AP
  // present on either side exactly once.
  const auto& trained = point.per_ap;
  const auto& observed = obs.aps();
  std::size_t t = 0, o = 0;
  while (t < trained.size() || o < observed.size()) {
    int cmp;
    if (t == trained.size()) {
      cmp = 1;
    } else if (o == observed.size()) {
      cmp = -1;
    } else {
      cmp = trained[t].bssid.compare(observed[o].bssid);
      cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
    }
    if (cmp == 0) {
      stats::Gaussian g = trained[t].gaussian(config_.sigma_floor_db);
      if (config_.use_pooled_sigma) {
        g.sigma = pooled_sigma_db(trained[t].bssid);
      }
      total += g.log_pdf(observed[o].mean_dbm);
      ++common;
      ++t;
      ++o;
    } else {
      // Trained-but-unheard or heard-but-untrained: either way the
      // AP's visibility disagrees.
      total += config_.missing_ap_log_penalty;
      ++penalized;
      cmp < 0 ? ++t : ++o;
    }
  }
  if (common_aps) *common_aps = common;
  if (penalized_aps) *penalized_aps = penalized;
  return total;
}

double ProbabilisticLocator::score_point(std::size_t point,
                                         const CompiledObservation& q,
                                         int* common_aps) const {
  const std::size_t stride = compiled_->row_stride();
  const kernels::ProbRowScore s = kernels::prob_score_row<simd::Vec4d>(
      compiled_->mean_row(point), compiled_->mask_row(point),
      tables_->log_norm.data() + point * stride,
      tables_->inv_two_var.data() + point * stride, q.mean_dbm.data(),
      q.present.data(), stride);
  const int common_i = static_cast<int>(s.common);
  // Penalties = trained-only + observed-only (inside or outside the
  // trained universe).
  const int penalties = compiled_->trained_count(point) + q.in_universe() +
                        q.outside_universe - 2 * common_i;
  if (common_aps) *common_aps = common_i;
  return s.gauss +
         config_.missing_ap_log_penalty * static_cast<double>(penalties);
}

ScoredPoint ProbabilisticLocator::scored_point(
    std::size_t point, const CompiledObservation& q) const {
  ScoredPoint sp;
  sp.point = &compiled_->point(point);
  sp.log_likelihood = score_point(point, q, &sp.common_aps);
  if (sp.common_aps < config_.min_common_aps) {
    sp.log_likelihood = -std::numeric_limits<double>::infinity();
  }
  return sp;
}

LocationEstimate ProbabilisticLocator::best_of_rows(
    std::span<const std::uint32_t> rows,
    const CompiledObservation& q) const {
  LocationEstimate est;
  ScoredPoint best;
  best.log_likelihood = -std::numeric_limits<double>::infinity();
  for (const std::uint32_t p : rows) {
    const ScoredPoint sp = scored_point(p, q);
    if (best.point == nullptr || sp.log_likelihood > best.log_likelihood) {
      best = sp;
    }
  }
  if (best.point == nullptr ||
      best.log_likelihood == -std::numeric_limits<double>::infinity()) {
    return est;
  }
  est.valid = true;
  est.position = best.point->position;
  est.location_name = best.point->location;
  est.score = best.log_likelihood;
  est.aps_used = best.common_aps;
  return est;
}

std::vector<ScoredPoint> ProbabilisticLocator::score_all(
    const Observation& obs) const {
  const CompiledObservation q = compiled_->compile_observation(obs);
  std::vector<ScoredPoint> scores;
  scores.reserve(compiled_->point_count());
  for (std::size_t p = 0; p < compiled_->point_count(); ++p) {
    scores.push_back(scored_point(p, q));
  }
  return scores;
}

std::vector<std::vector<ScoredPoint>> ProbabilisticLocator::score_batch(
    std::span<const Observation> obs, concurrency::ThreadPool* pool) const {
  score_batch_calls().increment();
  score_batch_observations().add(obs.size());
  metrics::ScopedTimer timer(score_latency(), obs.size());
  std::vector<std::vector<ScoredPoint>> out(obs.size());
  const std::size_t points = compiled_->point_count();
  // Cache-blocked sweep: each worker takes a group of observations,
  // compiles them once, then walks the training rows in tiles scoring
  // the whole group per tile — the tile's four table panels stay
  // cache-resident across the group instead of being re-streamed per
  // observation. Per-<observation, row> arithmetic is score_point
  // verbatim, so results are identical to score_all per element.
  const std::size_t groups = (obs.size() + kBatchGroup - 1) / kBatchGroup;
  auto body = [&](std::size_t g) {
    const std::size_t begin = g * kBatchGroup;
    const std::size_t end = std::min(begin + kBatchGroup, obs.size());
    std::vector<CompiledObservation> qs;
    qs.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      qs.push_back(compiled_->compile_observation(obs[i]));
      out[i].reserve(points);
    }
    for (std::size_t p0 = 0; p0 < points; p0 += kPointTile) {
      const std::size_t p1 = std::min(p0 + kPointTile, points);
      for (std::size_t i = begin; i < end; ++i) {
        for (std::size_t p = p0; p < p1; ++p) {
          out[i].push_back(scored_point(p, qs[i - begin]));
        }
      }
    }
  };
  if (pool && groups > 1) {
    concurrency::parallel_for(*pool, 0, groups, body);
  } else {
    for (std::size_t g = 0; g < groups; ++g) body(g);
  }
  return out;
}

LocationEstimate ProbabilisticLocator::best_of_all(
    const CompiledObservation& q) const {
  LocationEstimate est;
  ScoredPoint best;
  best.log_likelihood = -std::numeric_limits<double>::infinity();
  for (std::size_t p = 0; p < compiled_->point_count(); ++p) {
    const ScoredPoint sp = scored_point(p, q);
    if (best.point == nullptr || sp.log_likelihood > best.log_likelihood) {
      best = sp;
    }
  }
  if (best.point == nullptr ||
      best.log_likelihood == -std::numeric_limits<double>::infinity()) {
    return est;
  }
  est.valid = true;
  est.position = best.point->position;
  est.location_name = best.point->location;
  est.score = best.log_likelihood;
  est.aps_used = best.common_aps;
  return est;
}

void ProbabilisticLocator::locate_quad(const CompiledObservation* qs,
                                       LocationEstimate* out) const {
  using V = simd::Vec4d;
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  const std::size_t stride = compiled_->row_stride();
  const std::size_t points = compiled_->point_count();

  // Transpose the four compiled queries into slot-major panels (one
  // aligned vector of four observations per universe slot) and hoist
  // each observation's constant penalty base K = in + outside. The
  // panels are per-thread scratch: every cell is overwritten below,
  // so only the capacity is reused across quads.
  thread_local simd::AlignedDoubles qm_t;
  thread_local simd::AlignedDoubles qp_t;
  qm_t.resize(stride * simd::kLanes);
  qp_t.resize(stride * simd::kLanes);
  alignas(simd::kAlignment) double k_base[simd::kLanes];
  for (std::size_t j = 0; j < simd::kLanes; ++j) {
    for (std::size_t u = 0; u < stride; ++u) {
      qm_t[u * simd::kLanes + j] = qs[j].mean_dbm[u];
      qp_t[u * simd::kLanes + j] = qs[j].present[u];
    }
    k_base[j] =
        static_cast<double>(qs[j].in_universe() + qs[j].outside_universe);
  }

  // Per-row epilogue, all in lanes. The scalar path computes
  //   penalties = trained + in + outside - 2*common   (exact small ints)
  //   ll = gauss + penalty * penalties; common < min  ->  -inf
  // and the lane arithmetic below evaluates the same exact integer
  // values and the same two rounding ops (penalty*pen, gauss + x), so
  // each lane matches scored_point() bit for bit. The arg-max uses the
  // same strictly-greater update as best_of_all: rows scanned in
  // order, first maximum wins, -inf rows can never displace anything.
  const V v_k = V::load(k_base);
  const V v_penalty = V::broadcast(config_.missing_ap_log_penalty);
  const V v_min_common =
      V::broadcast(static_cast<double>(config_.min_common_aps));
  const V v_ninf = V::broadcast(kNegInf);
  const V v_two = V::broadcast(2.0);
  V best_ll = v_ninf;
  V best_row = V::zero();
  V best_common = V::zero();
  for (std::size_t p = 0; p < points; ++p) {
    V gauss, common;
    kernels::prob_score_row_obs4<V>(
        compiled_->mean_row(p), compiled_->mask_row(p),
        tables_->log_norm.data() + p * stride,
        tables_->inv_two_var.data() + p * stride,
        qm_t.data(), qp_t.data(), stride, &gauss, &common);
    const V v_trained =
        V::broadcast(static_cast<double>(compiled_->trained_count(p)));
    const V pen = (v_trained + v_k) - v_two * common;
    V ll = gauss + v_penalty * pen;
    ll = V::select_ge(common, v_min_common, ll, v_ninf);
    const V v_row = V::broadcast(static_cast<double>(p));
    best_row = V::select_gt(ll, best_ll, v_row, best_row);
    best_common = V::select_gt(ll, best_ll, common, best_common);
    best_ll = V::select_gt(ll, best_ll, ll, best_ll);
  }

  alignas(simd::kAlignment) double lls[simd::kLanes];
  alignas(simd::kAlignment) double rows[simd::kLanes];
  alignas(simd::kAlignment) double commons[simd::kLanes];
  best_ll.store(lls);
  best_row.store(rows);
  best_common.store(commons);
  for (std::size_t i = 0; i < simd::kLanes; ++i) {
    LocationEstimate est;
    if (points > 0 && lls[i] != kNegInf) {
      const traindb::TrainingPoint& tp =
          compiled_->point(static_cast<std::size_t>(rows[i]));
      est.valid = true;
      est.position = tp.position;
      est.location_name = tp.location;
      est.score = lls[i];
      est.aps_used = static_cast<int>(commons[i]);
    }
    out[i] = est;
  }
}

LocationEstimate ProbabilisticLocator::locate(const Observation& obs) const {
  LocationEstimate est;
  if (obs.empty() || compiled_->empty()) return est;

  const CompiledObservation q = compiled_->compile_observation(obs);
  if (pruner_) {
    prune_queries().increment();
    const std::vector<std::uint32_t> candidates = pruner_->select(q);
    if (!candidates.empty()) {
      prune_candidates_scored().add(candidates.size());
      est = best_of_rows(candidates, q);
      if (est.valid) return est;
    }
    // Degenerate prefilter or no valid candidate estimate: take the
    // exact full pass, so pruning can never invalidate an answer.
    prune_fallback_full().increment();
  }
  return best_of_all(q);
}

std::vector<LocationEstimate> ProbabilisticLocator::locate_batch(
    std::span<const Observation> obs, concurrency::ThreadPool* pool) const {
  // The pruned configuration is a per-observation adaptive path;
  // the base implementation already parallelizes it correctly.
  if (pruner_ || compiled_->empty()) {
    return Locator::locate_batch(obs, pool);
  }
  locate_batch_calls().increment();
  locate_batch_observations().add(obs.size());
  locate_calls().add(obs.size());
  metrics::ScopedTimer timer(locate_latency(), obs.size());
  std::vector<LocationEstimate> out(obs.size());

  // Empty observations never reach the kernels (locate() refuses them
  // before compiling, and min_common_aps = 0 would otherwise let an
  // all-zero query "win"); everything else rides the observation-major
  // kernel in groups of four, remainder on the single-query scan.
  std::vector<std::uint32_t> live;
  live.reserve(obs.size());
  for (std::size_t i = 0; i < obs.size(); ++i) {
    if (!obs[i].empty()) live.push_back(static_cast<std::uint32_t>(i));
  }
  const std::size_t quads = live.size() / 4;
  auto quad_body = [&](std::size_t g) {
    // Per-thread scratch: compile_observation_into reuses the buffer
    // capacity, so steady-state batches never touch the allocator.
    thread_local CompiledObservation qs[4];
    LocationEstimate res[4];
    for (std::size_t j = 0; j < 4; ++j) {
      compiled_->compile_observation_into(obs[live[g * 4 + j]], &qs[j]);
    }
    locate_quad(qs, res);
    for (std::size_t j = 0; j < 4; ++j) {
      out[live[g * 4 + j]] = std::move(res[j]);
    }
  };
  if (pool && quads > 1) {
    concurrency::parallel_for(*pool, 0, quads, quad_body);
  } else {
    for (std::size_t g = 0; g < quads; ++g) quad_body(g);
  }
  for (std::size_t k = quads * 4; k < live.size(); ++k) {
    out[live[k]] =
        best_of_all(compiled_->compile_observation(obs[live[k]]));
  }
  for (const LocationEstimate& est : out) {
    if (!est.valid) locate_degenerate().increment();
  }
  return out;
}

}  // namespace loctk::core

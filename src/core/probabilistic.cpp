#include "core/probabilistic.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/gaussian.hpp"

namespace loctk::core {

ProbabilisticLocator::ProbabilisticLocator(
    const traindb::TrainingDatabase& db, ProbabilisticConfig config)
    : db_(&db), config_(config) {
  // Pooled per-AP sigma: sample-count-weighted RMS of the per-point
  // sigmas (i.e. pooled variance).
  const auto& universe = db.bssid_universe();
  pooled_sigma_.assign(universe.size(), config_.sigma_floor_db);
  for (std::size_t i = 0; i < universe.size(); ++i) {
    double var_sum = 0.0;
    double weight = 0.0;
    for (const traindb::TrainingPoint& tp : db.points()) {
      if (const traindb::ApStatistics* s = tp.find(universe[i])) {
        const double w = static_cast<double>(s->sample_count);
        var_sum += w * s->stddev_db * s->stddev_db;
        weight += w;
      }
    }
    if (weight > 0.0) {
      pooled_sigma_[i] = std::max(std::sqrt(var_sum / weight),
                                  config_.sigma_floor_db);
    }
  }
}

double ProbabilisticLocator::pooled_sigma_db(const std::string& bssid) const {
  const auto idx = db_->bssid_index(bssid);
  if (!idx) return config_.sigma_floor_db;
  return pooled_sigma_[*idx];
}

double ProbabilisticLocator::log_likelihood(
    const Observation& obs, const traindb::TrainingPoint& point,
    int* common_aps) const {
  double total = 0.0;
  int common = 0;

  // APs trained at this point.
  for (const traindb::ApStatistics& ap : point.per_ap) {
    const auto observed = obs.mean_of(ap.bssid);
    if (observed) {
      stats::Gaussian g = ap.gaussian(config_.sigma_floor_db);
      if (config_.use_pooled_sigma) {
        g.sigma = pooled_sigma_db(ap.bssid);
      }
      total += g.log_pdf(*observed);
      ++common;
    } else {
      total += config_.missing_ap_log_penalty;
    }
  }
  // APs heard now but never trained here.
  for (const ObservedAp& oap : obs.aps()) {
    if (point.find(oap.bssid) == nullptr) {
      total += config_.missing_ap_log_penalty;
    }
  }
  if (common_aps) *common_aps = common;
  return total;
}

std::vector<ScoredPoint> ProbabilisticLocator::score_all(
    const Observation& obs) const {
  std::vector<ScoredPoint> scores;
  scores.reserve(db_->size());
  for (const traindb::TrainingPoint& p : db_->points()) {
    ScoredPoint sp;
    sp.point = &p;
    sp.log_likelihood = log_likelihood(obs, p, &sp.common_aps);
    if (sp.common_aps < config_.min_common_aps) {
      sp.log_likelihood = -std::numeric_limits<double>::infinity();
    }
    scores.push_back(sp);
  }
  return scores;
}

LocationEstimate ProbabilisticLocator::locate(const Observation& obs) const {
  LocationEstimate est;
  if (obs.empty() || db_->empty()) return est;

  const std::vector<ScoredPoint> scores = score_all(obs);
  const auto best = std::max_element(
      scores.begin(), scores.end(),
      [](const ScoredPoint& a, const ScoredPoint& b) {
        return a.log_likelihood < b.log_likelihood;
      });
  if (best == scores.end() ||
      best->log_likelihood == -std::numeric_limits<double>::infinity()) {
    return est;
  }
  est.valid = true;
  est.position = best->point->position;
  est.location_name = best->point->location;
  est.score = best->log_likelihood;
  est.aps_used = best->common_aps;
  return est;
}

}  // namespace loctk::core

#include "core/probabilistic.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/metrics.hpp"
#include "concurrency/parallel_for.hpp"
#include "stats/gaussian.hpp"

namespace loctk::core {

namespace {

metrics::Counter& score_batch_calls() {
  static metrics::Counter& c = metrics::counter("score.batch.calls");
  return c;
}
metrics::Counter& score_batch_observations() {
  static metrics::Counter& c =
      metrics::counter("score.batch.observations");
  return c;
}
metrics::HistogramMetric& score_latency() {
  static metrics::HistogramMetric& h =
      metrics::histogram("score.latency.seconds");
  return h;
}

}  // namespace

ProbabilisticLocator::ProbabilisticLocator(
    const traindb::TrainingDatabase& db, ProbabilisticConfig config)
    : ProbabilisticLocator(CompiledDatabase::compile(db), config) {}

ProbabilisticLocator::ProbabilisticLocator(
    std::shared_ptr<const CompiledDatabase> compiled,
    ProbabilisticConfig config)
    : compiled_(std::move(compiled)), config_(config) {
  build_kernel_tables();
}

void ProbabilisticLocator::build_kernel_tables() {
  const std::size_t points = compiled_->point_count();
  const std::size_t universe = compiled_->universe_size();

  // Pooled per-AP sigma: sample-count-weighted RMS of the per-point
  // sigmas (i.e. pooled variance), in one pass over the dense rows.
  pooled_sigma_.assign(universe, config_.sigma_floor_db);
  std::vector<double> var_sum(universe, 0.0);
  std::vector<double> weight(universe, 0.0);
  for (std::size_t p = 0; p < points; ++p) {
    const double* sd = compiled_->stddev_row(p);
    const double* w = compiled_->weight_row(p);
    for (std::size_t u = 0; u < universe; ++u) {
      var_sum[u] += w[u] * sd[u] * sd[u];
      weight[u] += w[u];
    }
  }
  for (std::size_t u = 0; u < universe; ++u) {
    if (weight[u] > 0.0) {
      pooled_sigma_[u] = std::max(std::sqrt(var_sum[u] / weight[u]),
                                  config_.sigma_floor_db);
    }
  }

  // Per-cell Gaussian constants. Untrained slots get exact zeros so
  // the branchless kernel's masked terms stay finite.
  log_norm_.assign(points * universe, 0.0);
  inv_two_var_.assign(points * universe, 0.0);
  for (std::size_t p = 0; p < points; ++p) {
    const double* sd = compiled_->stddev_row(p);
    const double* mask = compiled_->mask_row(p);
    const std::size_t base = p * universe;
    for (std::size_t u = 0; u < universe; ++u) {
      if (mask[u] == 0.0) continue;
      const double sigma =
          config_.use_pooled_sigma
              ? pooled_sigma_[u]
              : std::max(sd[u], config_.sigma_floor_db);
      log_norm_[base + u] = -0.5 * std::log(stats::kTwoPi * sigma * sigma);
      inv_two_var_[base + u] = 0.5 / (sigma * sigma);
    }
  }
}

double ProbabilisticLocator::pooled_sigma_db(const std::string& bssid) const {
  const auto slot = compiled_->slot_of(bssid);
  if (!slot) return config_.sigma_floor_db;
  return pooled_sigma_[*slot];
}

double ProbabilisticLocator::log_likelihood(
    const Observation& obs, const traindb::TrainingPoint& point,
    int* common_aps, int* penalized_aps) const {
  double total = 0.0;
  int common = 0;
  int penalized = 0;

  // Both sides are sorted by BSSID: a single merge visits every AP
  // present on either side exactly once.
  const auto& trained = point.per_ap;
  const auto& observed = obs.aps();
  std::size_t t = 0, o = 0;
  while (t < trained.size() || o < observed.size()) {
    int cmp;
    if (t == trained.size()) {
      cmp = 1;
    } else if (o == observed.size()) {
      cmp = -1;
    } else {
      cmp = trained[t].bssid.compare(observed[o].bssid);
      cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
    }
    if (cmp == 0) {
      stats::Gaussian g = trained[t].gaussian(config_.sigma_floor_db);
      if (config_.use_pooled_sigma) {
        g.sigma = pooled_sigma_db(trained[t].bssid);
      }
      total += g.log_pdf(observed[o].mean_dbm);
      ++common;
      ++t;
      ++o;
    } else {
      // Trained-but-unheard or heard-but-untrained: either way the
      // AP's visibility disagrees.
      total += config_.missing_ap_log_penalty;
      ++penalized;
      cmp < 0 ? ++t : ++o;
    }
  }
  if (common_aps) *common_aps = common;
  if (penalized_aps) *penalized_aps = penalized;
  return total;
}

double ProbabilisticLocator::score_point(std::size_t point,
                                         const CompiledObservation& q,
                                         int* common_aps) const {
  const std::size_t universe = compiled_->universe_size();
  const double* mean = compiled_->mean_row(point);
  const double* mask = compiled_->mask_row(point);
  const double* log_norm = log_norm_.data() + point * universe;
  const double* inv_two_var = inv_two_var_.data() + point * universe;

  double gauss = 0.0;
  double common = 0.0;
  for (std::size_t u = 0; u < universe; ++u) {
    const double both = mask[u] * q.present[u];
    const double d = q.mean_dbm[u] - mean[u];
    gauss += both * (log_norm[u] - d * d * inv_two_var[u]);
    common += both;
  }
  const int common_i = static_cast<int>(common);
  // Penalties = trained-only + observed-only (inside or outside the
  // trained universe).
  const int penalties = compiled_->trained_count(point) + q.in_universe() +
                        q.outside_universe - 2 * common_i;
  if (common_aps) *common_aps = common_i;
  return gauss +
         config_.missing_ap_log_penalty * static_cast<double>(penalties);
}

std::vector<ScoredPoint> ProbabilisticLocator::score_all(
    const Observation& obs) const {
  const CompiledObservation q = compiled_->compile_observation(obs);
  std::vector<ScoredPoint> scores;
  scores.reserve(compiled_->point_count());
  for (std::size_t p = 0; p < compiled_->point_count(); ++p) {
    ScoredPoint sp;
    sp.point = &compiled_->point(p);
    sp.log_likelihood = score_point(p, q, &sp.common_aps);
    if (sp.common_aps < config_.min_common_aps) {
      sp.log_likelihood = -std::numeric_limits<double>::infinity();
    }
    scores.push_back(sp);
  }
  return scores;
}

std::vector<std::vector<ScoredPoint>> ProbabilisticLocator::score_batch(
    std::span<const Observation> obs, concurrency::ThreadPool* pool) const {
  score_batch_calls().increment();
  score_batch_observations().add(obs.size());
  metrics::ScopedTimer timer(score_latency(), obs.size());
  std::vector<std::vector<ScoredPoint>> out(obs.size());
  auto body = [&](std::size_t i) { out[i] = score_all(obs[i]); };
  if (pool && obs.size() > 1) {
    concurrency::parallel_for(*pool, 0, obs.size(), body);
  } else {
    for (std::size_t i = 0; i < obs.size(); ++i) body(i);
  }
  return out;
}

LocationEstimate ProbabilisticLocator::locate(const Observation& obs) const {
  LocationEstimate est;
  if (obs.empty() || compiled_->empty()) return est;

  const std::vector<ScoredPoint> scores = score_all(obs);
  const auto best = std::max_element(
      scores.begin(), scores.end(),
      [](const ScoredPoint& a, const ScoredPoint& b) {
        return a.log_likelihood < b.log_likelihood;
      });
  if (best == scores.end() ||
      best->log_likelihood == -std::numeric_limits<double>::infinity()) {
    return est;
  }
  est.valid = true;
  est.position = best->point->position;
  est.location_name = best->point->location;
  est.score = best->log_likelihood;
  est.aps_used = best->common_aps;
  return est;
}

}  // namespace loctk::core

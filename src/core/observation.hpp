#pragma once

/// \file observation.hpp
/// A working-phase observation: the averaged RSSI vector.
///
/// Phase 2 of the paper (§3, §5.1): the client stands somewhere,
/// collects scans for a while (the paper used 1.5 minutes and "only
/// the average signal strength value of it", §6 item 2), and the
/// resulting per-AP mean vector is matched against the training
/// database. `Observation` is that vector plus enough bookkeeping
/// (counts, raw values) for the distribution-aware locators.

#include <optional>
#include <string>
#include <vector>

#include "radio/scanner.hpp"
#include "wiscan/record.hpp"

namespace loctk::core {

/// Per-AP aggregate within one observation.
struct ObservedAp {
  std::string bssid;
  double mean_dbm = 0.0;
  std::uint32_t sample_count = 0;
  /// Raw readings (dBm), kept for histogram/quantile matching.
  std::vector<double> samples_dbm;

  friend bool operator==(const ObservedAp&, const ObservedAp&) = default;
};

/// One observation: everything heard during the working-phase dwell,
/// grouped per AP and sorted by BSSID.
class Observation {
 public:
  Observation() = default;

  /// Builds from simulator scan records.
  static Observation from_scans(const std::vector<radio::ScanRecord>& scans);

  /// Builds from wi-scan entries (e.g. a replayed capture file).
  static Observation from_entries(
      const std::vector<wiscan::WiScanEntry>& entries);

  const std::vector<ObservedAp>& aps() const { return aps_; }
  std::size_t ap_count() const { return aps_.size(); }
  bool empty() const { return aps_.empty(); }

  /// True when every per-AP mean and raw sample is a finite dBm value
  /// — the precondition for Gaussian/Welford math downstream. Scans
  /// built from parsed wi-scan rows always satisfy it (the row layer
  /// rejects non-finite rssi); hand-built observations may not.
  bool is_finite() const;

  /// Aggregate for `bssid`; nullptr when that AP was never heard.
  const ObservedAp* find(const std::string& bssid) const;

  /// Mean RSSI for `bssid`, or nullopt.
  std::optional<double> mean_of(const std::string& bssid) const;

  /// Mean-signal vector over an ordered BSSID universe; missing APs
  /// yield `missing_dbm`.
  std::vector<double> signature(const std::vector<std::string>& universe,
                                double missing_dbm = -100.0) const;

  friend bool operator==(const Observation&, const Observation&) = default;

 private:
  std::vector<ObservedAp> aps_;
};

}  // namespace loctk::core

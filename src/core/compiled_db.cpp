#include "core/compiled_db.hpp"

#include <algorithm>

#include "traindb/codec.hpp"

namespace loctk::core {

CompiledDatabase::CompiledDatabase(const traindb::TrainingDatabase& db)
    : db_(&db) {
  build_matrices();
}

CompiledDatabase::CompiledDatabase(traindb::TrainingDatabase&& db)
    : owned_(std::make_shared<const traindb::TrainingDatabase>(
          std::move(db))),
      db_(owned_.get()) {
  build_matrices();
}

void CompiledDatabase::build_matrices() {
  points_ = db_->size();
  universe_ = db_->bssid_universe().size();
  stride_ = simd::padded_stride(universe_);
  const std::size_t cells = points_ * stride_;
  mean_.assign(cells, 0.0);
  stddev_.assign(cells, 0.0);
  mask_.assign(cells, 0.0);
  weight_.assign(cells, 0.0);
  trained_count_.assign(points_, 0);

  const auto& universe = db_->bssid_universe();
  for (std::size_t p = 0; p < points_; ++p) {
    const traindb::TrainingPoint& tp = db_->points()[p];
    const std::size_t base = p * stride_;
    // per_ap and the universe are both sorted by BSSID: one merge
    // interns the whole row.
    std::size_t j = 0;
    for (const traindb::ApStatistics& s : tp.per_ap) {
      while (j < universe_ && universe[j] < s.bssid) ++j;
      if (j == universe_ || universe[j] != s.bssid) continue;
      mean_[base + j] = s.mean_dbm;
      stddev_[base + j] = s.stddev_db;
      mask_[base + j] = 1.0;
      weight_[base + j] = static_cast<double>(s.sample_count);
      ++j;
    }
    int count = 0;
    for (std::size_t u = 0; u < universe_; ++u) {
      count += mask_[base + u] != 0.0;
    }
    trained_count_[p] = count;
  }
}

std::optional<std::uint32_t> CompiledDatabase::slot_of(
    const std::string& bssid) const {
  const auto idx = db_->bssid_index(bssid);
  if (!idx) return std::nullopt;
  return static_cast<std::uint32_t>(*idx);
}

CompiledObservation CompiledDatabase::compile_observation(
    const Observation& obs) const {
  CompiledObservation q;
  compile_observation_into(obs, &q);
  return q;
}

void CompiledDatabase::compile_observation_into(
    const Observation& obs, CompiledObservation* out) const {
  CompiledObservation& q = *out;
  // Padded to the row stride so the kernels' aligned loads cover the
  // query vectors too; pad cells stay 0.0 / not-present.
  q.mean_dbm.assign(stride_, 0.0);
  q.present.assign(stride_, 0.0);
  q.outside_universe = 0;
  q.total_aps = obs.ap_count();
  q.slots.clear();
  q.slot_aps.clear();
  q.slots.reserve(obs.ap_count());
  q.slot_aps.reserve(obs.ap_count());

  const auto& universe = db_->bssid_universe();
  std::size_t j = 0;
  for (const ObservedAp& ap : obs.aps()) {
    while (j < universe_ && universe[j] < ap.bssid) ++j;
    if (j < universe_ && universe[j] == ap.bssid) {
      q.mean_dbm[j] = ap.mean_dbm;
      q.present[j] = 1.0;
      q.slots.push_back(static_cast<std::uint32_t>(j));
      q.slot_aps.push_back(&ap);
      ++j;
    } else {
      ++q.outside_universe;
    }
  }
}

std::shared_ptr<const CompiledDatabase> compile_collection(
    const wiscan::Collection& collection, const wiscan::LocationMap& map,
    const traindb::GeneratorConfig& config,
    traindb::GeneratorReport* report, concurrency::ThreadPool* pool) {
  traindb::TrainingDatabase db =
      pool != nullptr
          ? traindb::generate_database_parallel(collection, map, *pool,
                                                config, report)
          : traindb::generate_database(collection, map, config, report);
  return CompiledDatabase::compile_owned(std::move(db));
}

std::shared_ptr<const CompiledDatabase> load_compiled_database(
    const std::filesystem::path& path) {
  return CompiledDatabase::compile_owned(traindb::read_database(path));
}

}  // namespace loctk::core

#include "core/compiled_db.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "traindb/codec.hpp"

namespace loctk::core {

CompiledDatabase::CompiledDatabase(const traindb::TrainingDatabase& db)
    : db_(&db) {
  build_matrices();
}

CompiledDatabase::CompiledDatabase(traindb::TrainingDatabase&& db)
    : owned_(std::make_shared<const traindb::TrainingDatabase>(
          std::move(db))),
      db_(owned_.get()) {
  build_matrices();
}

void CompiledDatabase::build_matrices() {
  points_ = db_->size();
  universe_ = db_->bssid_universe().size();
  stride_ = simd::padded_stride(universe_);
  const std::size_t cells = points_ * stride_;
  mean_.assign(cells, 0.0);
  stddev_.assign(cells, 0.0);
  mask_.assign(cells, 0.0);
  weight_.assign(cells, 0.0);
  trained_count_.assign(points_, 0);

  for (std::size_t p = 0; p < points_; ++p) {
    trained_count_[p] = compile_row(db_->points()[p], p * stride_);
  }
}

int CompiledDatabase::compile_row(const traindb::TrainingPoint& tp,
                                  std::size_t base) {
  // per_ap and the universe are both sorted by BSSID: one merge
  // interns the whole row.
  const auto& universe = db_->bssid_universe();
  std::size_t j = 0;
  int count = 0;
  for (const traindb::ApStatistics& s : tp.per_ap) {
    while (j < universe_ && universe[j] < s.bssid) ++j;
    if (j == universe_ || universe[j] != s.bssid) continue;
    mean_[base + j] = s.mean_dbm;
    stddev_[base + j] = s.stddev_db;
    mask_[base + j] = 1.0;
    weight_[base + j] = static_cast<double>(s.sample_count);
    ++count;
    ++j;
  }
  return count;
}

CompiledDatabase::CompiledDatabase(traindb::TrainingDatabase&& merged,
                                   const CompiledDatabase& base,
                                   const std::vector<bool>& row_changed)
    : owned_(std::make_shared<const traindb::TrainingDatabase>(
          std::move(merged))),
      db_(owned_.get()) {
  delta_build(base, row_changed);
}

void CompiledDatabase::delta_build(const CompiledDatabase& base,
                                   const std::vector<bool>& row_changed) {
  points_ = db_->size();
  universe_ = db_->bssid_universe().size();
  stride_ = simd::padded_stride(universe_);
  const std::size_t cells = points_ * stride_;
  mean_.assign(cells, 0.0);
  stddev_.assign(cells, 0.0);
  mask_.assign(cells, 0.0);
  weight_.assign(cells, 0.0);
  trained_count_.assign(points_, 0);

  // Monotonic old-slot → new-slot remap from one two-pointer pass over
  // the sorted universes. An old BSSID missing from the new universe
  // (its last occurrence was replaced away) maps to kGone; unchanged
  // rows never trained such a slot — if they had, the BSSID would
  // still be in the merged universe — so dropping it copies nothing.
  constexpr std::size_t kGone = static_cast<std::size_t>(-1);
  const auto& old_universe = base.db_->bssid_universe();
  const auto& new_universe = db_->bssid_universe();
  std::vector<std::size_t> new_slot(old_universe.size(), kGone);
  for (std::size_t i = 0, j = 0; i < old_universe.size(); ++i) {
    while (j < new_universe.size() && new_universe[j] < old_universe[i]) {
      ++j;
    }
    if (j < new_universe.size() && new_universe[j] == old_universe[i]) {
      new_slot[i] = j++;
    }
  }

  const std::size_t shared_rows = std::min(points_, base.points_);
  for (std::size_t p = 0; p < points_; ++p) {
    const std::size_t dst = p * stride_;
    if (p >= shared_rows || row_changed[p]) {
      trained_count_[p] = compile_row(db_->points()[p], dst);
      continue;
    }
    // Unchanged row: move its cells under the remap in contiguous
    // runs — a run ends where a slot disappears or the shift between
    // old and new indices changes (an inserted slot between them).
    const std::size_t src = p * base.stride_;
    std::size_t u = 0;
    while (u < old_universe.size()) {
      if (new_slot[u] == kGone) {
        ++u;
        continue;
      }
      const std::size_t run = u;
      const std::size_t shift = new_slot[u] - u;
      while (u < old_universe.size() && new_slot[u] != kGone &&
             new_slot[u] - u == shift) {
        ++u;
      }
      const std::size_t len = u - run;
      const std::size_t from = src + run;
      const std::size_t to = dst + run + shift;
      std::copy_n(base.mean_.data() + from, len, mean_.data() + to);
      std::copy_n(base.stddev_.data() + from, len, stddev_.data() + to);
      std::copy_n(base.mask_.data() + from, len, mask_.data() + to);
      std::copy_n(base.weight_.data() + from, len, weight_.data() + to);
    }
    trained_count_[p] = base.trained_count_[p];
  }
}

std::shared_ptr<const CompiledDatabase> CompiledDatabase::delta_compile(
    const DatabaseDelta& delta) const {
  // Merge semantics (the oracle): replacements land in place, new
  // locations append in upsert order, later upserts for one location
  // win. from_points re-sorts each per-AP list and rebuilds the sorted
  // unique universe, so the merged database is bit-identical to one
  // assembled from scratch out of the same points.
  std::vector<traindb::TrainingPoint> merged_points = db_->points();
  std::vector<bool> row_changed(merged_points.size(), false);
  std::unordered_map<std::string, std::size_t> index_of;
  index_of.reserve(merged_points.size() + delta.upserts.size());
  for (std::size_t p = 0; p < merged_points.size(); ++p) {
    index_of.emplace(merged_points[p].location, p);
  }
  for (const traindb::TrainingPoint& up : delta.upserts) {
    const auto [it, inserted] =
        index_of.emplace(up.location, merged_points.size());
    if (inserted) {
      merged_points.push_back(up);
      row_changed.push_back(true);
    } else {
      merged_points[it->second] = up;
      row_changed[it->second] = true;
    }
  }
  traindb::TrainingDatabase merged = traindb::TrainingDatabase::from_points(
      std::move(merged_points), db_->site_name());
  return std::shared_ptr<const CompiledDatabase>(
      new CompiledDatabase(std::move(merged), *this, row_changed));
}

std::optional<std::uint32_t> CompiledDatabase::slot_of(
    const std::string& bssid) const {
  const auto idx = db_->bssid_index(bssid);
  if (!idx) return std::nullopt;
  return static_cast<std::uint32_t>(*idx);
}

CompiledObservation CompiledDatabase::compile_observation(
    const Observation& obs) const {
  CompiledObservation q;
  compile_observation_into(obs, &q);
  return q;
}

void CompiledDatabase::compile_observation_into(
    const Observation& obs, CompiledObservation* out) const {
  CompiledObservation& q = *out;
  // Padded to the row stride so the kernels' aligned loads cover the
  // query vectors too; pad cells stay 0.0 / not-present.
  q.mean_dbm.assign(stride_, 0.0);
  q.present.assign(stride_, 0.0);
  q.outside_universe = 0;
  q.total_aps = obs.ap_count();
  q.slots.clear();
  q.slot_aps.clear();
  q.slots.reserve(obs.ap_count());
  q.slot_aps.reserve(obs.ap_count());

  const auto& universe = db_->bssid_universe();
  std::size_t j = 0;
  for (const ObservedAp& ap : obs.aps()) {
    while (j < universe_ && universe[j] < ap.bssid) ++j;
    if (j < universe_ && universe[j] == ap.bssid) {
      q.mean_dbm[j] = ap.mean_dbm;
      q.present[j] = 1.0;
      q.slots.push_back(static_cast<std::uint32_t>(j));
      q.slot_aps.push_back(&ap);
      ++j;
    } else {
      ++q.outside_universe;
    }
  }
}

std::shared_ptr<const CompiledDatabase> compile_collection(
    const wiscan::Collection& collection, const wiscan::LocationMap& map,
    const traindb::GeneratorConfig& config,
    traindb::GeneratorReport* report, concurrency::ThreadPool* pool) {
  traindb::TrainingDatabase db =
      pool != nullptr
          ? traindb::generate_database_parallel(collection, map, *pool,
                                                config, report)
          : traindb::generate_database(collection, map, config, report);
  return CompiledDatabase::compile_owned(std::move(db));
}

std::shared_ptr<const CompiledDatabase> load_compiled_database(
    const std::filesystem::path& path) {
  return CompiledDatabase::compile_owned(traindb::read_database(path));
}

}  // namespace loctk::core
